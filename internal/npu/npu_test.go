package npu

import (
	"testing"
	"testing/quick"

	"cronus/internal/attest"
	"cronus/internal/sim"
)

func testNPU(k *sim.Kernel) *Device {
	cfg := DefaultConfig("npu0")
	cfg.MemBytes = 16 << 20
	return New(k, sim.DefaultCosts(), cfg)
}

func inSim(t *testing.T, body func(k *sim.Kernel, p *sim.Proc)) {
	t.Helper()
	k := sim.NewKernel()
	k.Spawn("test", func(p *sim.Proc) { body(k, p) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMemAllocIsolation(t *testing.T) {
	inSim(t, func(k *sim.Kernel, p *sim.Proc) {
		d := testNPU(k)
		a := d.CreateContext()
		b := d.CreateContext()
		pa, err := a.MemAlloc(256)
		if err != nil {
			t.Error(err)
			return
		}
		if err := a.HtoD(p, pa, make([]byte, 256)); err != nil {
			t.Error(err)
		}
		// Context b cannot touch a's device memory.
		if err := b.DtoH(p, make([]byte, 16), pa); err == nil {
			t.Error("cross-context NPU memory access succeeded")
		}
	})
}

// buildMatmul emits the instruction stream for C[M×N] = A[M×K] × Bᵀ, with B
// supplied as weight blocks W[nb][kb] (each 16×16, o-major), A and C int8
// row-major in device DRAM. N and K must be multiples of 16.
func buildMatmul(aAddr, wAddr, cAddr uint64, m, n, kk int) []Insn {
	nb := n / BlockOut
	kb := kk / BlockIn
	var insns []Insn
	// Load all weight blocks once.
	insns = append(insns, Insn{Op: OpLoad, Mem: MemWgt, DRAMAddr: wAddr, SRAMIdx: 0, Count: uint32(nb * kb)})
	for row := 0; row < m; row++ {
		insns = append(insns, Insn{
			Op: OpLoad, Mem: MemInp,
			DRAMAddr: aAddr + uint64(row*kk),
			SRAMIdx:  0, Count: uint32(kb),
		})
		for j := 0; j < nb; j++ {
			insns = append(insns, Insn{
				Op:     OpGemm,
				InpIdx: 0, InpStride: 1,
				WgtIdx: uint32(j * kb), WgtStride: 1,
				AccIdx: uint32(j), AccStride: 0,
				Count: uint32(kb),
				Reset: true,
			})
		}
		insns = append(insns, Insn{Op: OpCommit, SrcIdx: 0, DstIdx: 0, Count: uint32(nb)})
		insns = append(insns, Insn{
			Op: OpStore, Mem: MemOut,
			DRAMAddr: cAddr + uint64(row*n),
			SRAMIdx:  0, Count: uint32(nb),
		})
	}
	insns = append(insns, Insn{Op: OpFinish})
	return insns
}

// packWeights lays out B[K×N] int8 as weight blocks W[nb][kb][o][k] where
// W[nb][kb][o][k] = B[kb*16+k][nb*16+o].
func packWeights(b []int8, kk, n int) []byte {
	nb := n / BlockOut
	kb := kk / BlockIn
	out := make([]byte, nb*kb*WgtBlockBytes)
	idx := 0
	for j := 0; j < nb; j++ {
		for t := 0; t < kb; t++ {
			for o := 0; o < BlockOut; o++ {
				for k := 0; k < BlockIn; k++ {
					out[idx] = byte(b[(t*BlockIn+k)*n+j*BlockOut+o])
					idx++
				}
			}
		}
	}
	return out
}

func sat8(v int32) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

func TestTiledMatmulMatchesReference(t *testing.T) {
	inSim(t, func(k *sim.Kernel, p *sim.Proc) {
		d := testNPU(k)
		ctx := d.CreateContext()
		const M, N, K = 4, 32, 48
		a := make([]int8, M*K)
		b := make([]int8, K*N)
		for i := range a {
			a[i] = int8(i%7 - 3)
		}
		for i := range b {
			b[i] = int8(i%5 - 2)
		}
		aAddr, _ := ctx.MemAlloc(uint64(len(a)))
		wBytes := packWeights(b, K, N)
		wAddr, _ := ctx.MemAlloc(uint64(len(wBytes)))
		cAddr, _ := ctx.MemAlloc(uint64(M * N))
		ab := make([]byte, len(a))
		for i, v := range a {
			ab[i] = byte(v)
		}
		ctx.HtoD(p, aAddr, ab)
		ctx.HtoD(p, wAddr, wBytes)
		if err := ctx.Run(p, buildMatmul(aAddr, wAddr, cAddr, M, N, K)); err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, M*N)
		ctx.DtoH(p, got, cAddr)
		for i := 0; i < M; i++ {
			for j := 0; j < N; j++ {
				var ref int32
				for kk := 0; kk < K; kk++ {
					ref += int32(a[i*K+kk]) * int32(b[kk*N+j])
				}
				if int8(got[i*N+j]) != sat8(ref) {
					t.Errorf("C[%d,%d] = %d, want %d", i, j, int8(got[i*N+j]), sat8(ref))
					return
				}
			}
		}
	})
}

func TestRunChargesCycleTime(t *testing.T) {
	inSim(t, func(k *sim.Kernel, p *sim.Proc) {
		d := testNPU(k)
		ctx := d.CreateContext()
		addr, _ := ctx.MemAlloc(uint64(4 * InpBlockBytes))
		insns := []Insn{
			{Op: OpLoad, Mem: MemInp, DRAMAddr: addr, Count: 4},
			{Op: OpGemm, Count: 10, Reset: true},
			{Op: OpFinish},
		}
		start := p.Now()
		if err := ctx.Run(p, insns); err != nil {
			t.Error(err)
			return
		}
		elapsed := sim.Duration(p.Now() - start)
		want := sim.Duration(float64(CycleCount(insns)) / d.costs.NPUCyclePerNs)
		if elapsed != want {
			t.Errorf("elapsed %v, want %v", elapsed, want)
		}
		if elapsed <= 0 {
			t.Error("no virtual time charged")
		}
	})
}

func TestPipelineSerializesStreams(t *testing.T) {
	k := sim.NewKernel()
	d := testNPU(k)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		k.Spawn("tenant", func(p *sim.Proc) {
			ctx := d.CreateContext()
			ctx.Run(p, []Insn{{Op: OpGemm, Count: 1000, Reset: true}, {Op: OpFinish}})
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ends) != 2 || ends[0] == ends[1] {
		t.Fatalf("streams did not serialize: ends=%v", ends)
	}
	if float64(ends[1]) < 1.9*float64(ends[0]) {
		t.Fatalf("second stream should take ~2x: %v", ends)
	}
}

func TestAluOps(t *testing.T) {
	inSim(t, func(k *sim.Kernel, p *sim.Proc) {
		d := testNPU(k)
		ctx := d.CreateContext()
		// Seed acc[0] via a GEMM with identity-ish data: simpler to poke
		// directly through LOAD of MemAcc.
		accBytes := make([]byte, AccBlockBytes)
		for o := 0; o < BlockOut; o++ {
			v := int32(o - 8)
			accBytes[o*4] = byte(v)
			accBytes[o*4+1] = byte(v >> 8)
			accBytes[o*4+2] = byte(v >> 16)
			accBytes[o*4+3] = byte(v >> 24)
		}
		addr, _ := ctx.MemAlloc(uint64(len(accBytes)))
		ctx.HtoD(p, addr, accBytes)
		insns := []Insn{
			{Op: OpLoad, Mem: MemAcc, DRAMAddr: addr, SRAMIdx: 0, Count: 1},
			{Op: OpAlu, Alu: AluMax, DstIdx: 0, UseImm: true, Imm: 0}, // ReLU
			{Op: OpAlu, Alu: AluAdd, DstIdx: 0, UseImm: true, Imm: 100},
			{Op: OpAlu, Alu: AluShr, DstIdx: 0, UseImm: true, Imm: 1},
			{Op: OpCommit, SrcIdx: 0, DstIdx: 0, Count: 1},
			{Op: OpStore, Mem: MemOut, DRAMAddr: addr, SRAMIdx: 0, Count: 1},
			{Op: OpFinish},
		}
		// Patch Count for ALU ops (one block each).
		for i := range insns {
			if insns[i].Op == OpAlu {
				insns[i].Count = 1
			}
		}
		if err := ctx.Run(p, insns); err != nil {
			t.Error(err)
			return
		}
		out := make([]byte, OutBlockBytes)
		ctx.DtoH(p, out, addr)
		for o := 0; o < BlockOut; o++ {
			v := int32(o - 8)
			if v < 0 {
				v = 0
			}
			v = (v + 100) >> 1
			if int8(out[o]) != sat8(v) {
				t.Errorf("lane %d = %d, want %d", o, int8(out[o]), sat8(v))
			}
		}
	})
}

func TestScratchpadBoundsChecked(t *testing.T) {
	inSim(t, func(k *sim.Kernel, p *sim.Proc) {
		d := testNPU(k)
		ctx := d.CreateContext()
		addr, _ := ctx.MemAlloc(1 << 20)
		bad := []Insn{
			{Op: OpLoad, Mem: MemInp, DRAMAddr: addr, SRAMIdx: InpBufBlocks - 1, Count: 2},
		}
		if err := ctx.Run(p, bad); err == nil {
			t.Error("scratchpad overflow accepted")
		}
		bad2 := []Insn{{Op: OpGemm, AccIdx: AccBufBlocks, Count: 1}}
		if err := ctx.Run(p, bad2); err == nil {
			t.Error("gemm index overflow accepted")
		}
	})
}

func TestResetScrubsAndInvalidates(t *testing.T) {
	inSim(t, func(k *sim.Kernel, p *sim.Proc) {
		d := testNPU(k)
		ctx := d.CreateContext()
		addr, _ := ctx.MemAlloc(64)
		ctx.HtoD(p, addr, []byte("npu tenant secret..............."))
		backing, _ := ctx.resolve(addr, 32)
		d.Reset()
		for _, b := range backing {
			if b != 0 {
				t.Error("NPU DRAM leaked across reset")
				return
			}
		}
		if _, err := ctx.MemAlloc(16); err != ErrStaleContext {
			t.Errorf("stale context: err = %v", err)
		}
		for _, v := range d.acc {
			if v != 0 {
				t.Error("accumulator scratchpad not scrubbed")
				return
			}
		}
	})
}

func TestDeviceAuthenticity(t *testing.T) {
	k := sim.NewKernel()
	d := testNPU(k)
	ch := []byte("challenge")
	if !attest.Verify(d.PubKey(), ch, d.Authenticate(ch)) {
		t.Fatal("genuine NPU signature rejected")
	}
}

// Property: GEMM with Reset over random blocks equals the int32 reference.
func TestGemmQuickProperty(t *testing.T) {
	inSim(t, func(k *sim.Kernel, p *sim.Proc) {
		d := testNPU(k)
		ctx := d.CreateContext()
		f := func(wSeed, iSeed uint8) bool {
			w := make([]byte, WgtBlockBytes)
			in := make([]byte, InpBlockBytes)
			for i := range w {
				w[i] = byte(int8((int(wSeed)+i*31)%11 - 5))
			}
			for i := range in {
				in[i] = byte(int8((int(iSeed)+i*17)%9 - 4))
			}
			wAddr, _ := ctx.MemAlloc(uint64(len(w)))
			iAddr, _ := ctx.MemAlloc(uint64(len(in)))
			oAddr, _ := ctx.MemAlloc(OutBlockBytes)
			ctx.HtoD(p, wAddr, w)
			ctx.HtoD(p, iAddr, in)
			insns := []Insn{
				{Op: OpLoad, Mem: MemWgt, DRAMAddr: wAddr, Count: 1},
				{Op: OpLoad, Mem: MemInp, DRAMAddr: iAddr, Count: 1},
				{Op: OpGemm, Count: 1, Reset: true},
				{Op: OpCommit, Count: 1},
				{Op: OpStore, Mem: MemOut, DRAMAddr: oAddr, Count: 1},
				{Op: OpFinish},
			}
			if err := ctx.Run(p, insns); err != nil {
				return false
			}
			got := make([]byte, OutBlockBytes)
			ctx.DtoH(p, got, oAddr)
			for o := 0; o < BlockOut; o++ {
				var ref int32
				for kk := 0; kk < BlockIn; kk++ {
					ref += int32(int8(w[o*BlockIn+kk])) * int32(int8(in[kk]))
				}
				if int8(got[o]) != sat8(ref) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Error(err)
		}
	})
}
