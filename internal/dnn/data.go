package dnn

import "math/rand"

// Dataset is a deterministic synthetic dataset generator standing in for
// MNIST / CIFAR-10 / ImageNet. Training-time measurements are independent of
// pixel content; what matters is the per-sample byte volume crossing into
// the enclave and onto the device each iteration, which the generator
// preserves.
type Dataset struct {
	Name       string
	SampleSize int // floats per sample
	Classes    int
	rng        *rand.Rand
}

// NewDataset creates a generator with a fixed seed.
func NewDataset(name string, sampleSize, classes int, seed int64) *Dataset {
	return &Dataset{
		Name:       name,
		SampleSize: sampleSize,
		Classes:    classes,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// MNIST returns the MNIST stand-in (28×28×1, 10 classes).
func MNIST() *Dataset { return NewDataset("MNIST", 28*28, 10, 1) }

// CIFAR10 returns the CIFAR-10 stand-in (32×32×3, 10 classes).
func CIFAR10() *Dataset { return NewDataset("CIFAR-10", 3*32*32, 10, 2) }

// ImageNet returns the (scaled) ImageNet stand-in (64×64×3, 100 classes).
func ImageNet() *Dataset { return NewDataset("ImageNet", 3*64*64, 100, 3) }

// ForModel returns the dataset matching a model's declared dataset.
func ForModel(m *Model) *Dataset {
	switch m.Dataset {
	case "MNIST":
		return MNIST()
	case "CIFAR-10":
		return CIFAR10()
	default:
		return ImageNet()
	}
}

// Batch produces one mini-batch: normalized inputs and integer labels.
func (d *Dataset) Batch(n int) (inputs []float32, labels []int) {
	inputs = make([]float32, n*d.SampleSize)
	labels = make([]int, n)
	for i := range inputs {
		inputs[i] = d.rng.Float32()*2 - 1
	}
	for i := range labels {
		labels[i] = d.rng.Intn(d.Classes)
	}
	return inputs, labels
}
