package dnn

import (
	"fmt"

	"cronus/internal/gpu"
	"cronus/internal/sim"
)

// Checkpoint is a host-side snapshot of a trainer's model state. The paper
// leaves application-data recovery to checkpointing techniques integrated
// above CRONUS (§III-B, §IV-D): after a partition failure the task is
// resubmitted and restores from its last checkpoint instead of restarting
// training from scratch.
type Checkpoint struct {
	Model   string
	Batch   int
	Step    int
	Weights [][]float32 // per layer
}

// Checkpoint downloads all weights synchronously.
func (t *Trainer) Checkpoint(p *sim.Proc) (*Checkpoint, error) {
	ck := &Checkpoint{
		Model:   t.model.Name,
		Batch:   t.batch,
		Step:    t.Steps,
		Weights: make([][]float32, len(t.w)),
	}
	for l := range t.w {
		raw, err := t.ops.DtoH(p, t.w[l], t.wLen[l]*4)
		if err != nil {
			return nil, fmt.Errorf("dnn: checkpoint layer %d: %w", l, err)
		}
		ck.Weights[l] = gpu.UnpackF32(raw)
	}
	return ck, nil
}

// Restore uploads a checkpoint into this trainer (same model and batch).
func (t *Trainer) Restore(p *sim.Proc, ck *Checkpoint) error {
	if ck.Model != t.model.Name {
		return fmt.Errorf("dnn: checkpoint is for %s, trainer runs %s", ck.Model, t.model.Name)
	}
	if len(ck.Weights) != len(t.w) {
		return fmt.Errorf("dnn: checkpoint has %d layers, trainer has %d", len(ck.Weights), len(t.w))
	}
	for l, w := range ck.Weights {
		if len(w) != t.wLen[l] {
			return fmt.Errorf("dnn: layer %d shape mismatch (%d vs %d)", l, len(w), t.wLen[l])
		}
		if err := t.ops.HtoD(p, t.w[l], gpu.PackF32(w)); err != nil {
			return fmt.Errorf("dnn: restore layer %d: %w", l, err)
		}
	}
	if err := t.ops.Sync(p); err != nil {
		return err
	}
	t.Steps = ck.Step
	return nil
}
