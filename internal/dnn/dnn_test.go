package dnn_test

import (
	"testing"

	"cronus/internal/baseline"
	"cronus/internal/core"
	"cronus/internal/dnn"
	"cronus/internal/gpu"
	"cronus/internal/sim"
)

func TestModelShapes(t *testing.T) {
	for _, m := range dnn.TrainingModels() {
		if len(m.Layers) == 0 {
			t.Fatalf("%s has no layers", m.Name)
		}
		if m.FLOPs(8) <= 0 {
			t.Fatalf("%s has zero FLOPs", m.Name)
		}
		for _, l := range m.Layers {
			if l.K <= 0 || l.N <= 0 || l.Spatial <= 0 {
				t.Fatalf("%s layer %s has bad dims %+v", m.Name, l.Name, l)
			}
		}
	}
	// Layer-count sanity versus the real architectures.
	if n := len(dnn.ResNet50().Layers); n < 45 || n > 55 {
		t.Errorf("ResNet50 layer count %d implausible", n)
	}
	if n := len(dnn.VGG16().Layers); n != 16 {
		t.Errorf("VGG16 has %d layers, want 16", n)
	}
	if n := len(dnn.DenseNet().Layers); n < 100 {
		t.Errorf("DenseNet has %d layers, want >100", n)
	}
}

func TestDatasetDeterministic(t *testing.T) {
	a1, l1 := dnn.MNIST().Batch(4)
	a2, l2 := dnn.MNIST().Batch(4)
	if a1[0] != a2[0] || l1[0] != l2[0] {
		t.Fatal("dataset not deterministic across instances")
	}
	if len(a1) != 4*28*28 {
		t.Fatalf("MNIST batch size %d", len(a1))
	}
}

// nativeTrainer builds a trainer on an unprotected device.
func nativeTrainer(p *sim.Proc, model *dnn.Model, batch int) (*dnn.Trainer, error) {
	k := p.Kernel()
	costs := sim.DefaultCosts()
	dev := gpu.New(k, costs, gpu.Config{Name: "g", MemBytes: 1 << 30, SMs: 46, CopyEngs: 2, MPS: true, KeySeed: "t"})
	gpu.RegisterStdKernels(dev.SMs())
	dnn.RegisterKernels(dev.SMs())
	ops, err := baseline.NewNativeCUDA(dev, costs, dnn.Cubin())
	if err != nil {
		return nil, err
	}
	return dnn.NewTrainer(p, ops, model, batch)
}

func TestTrainLeNetNativeLossFiniteAndWeightsMove(t *testing.T) {
	k := sim.NewKernel()
	var fail error
	k.Spawn("main", func(p *sim.Proc) {
		defer k.Stop()
		tr, err := nativeTrainer(p, dnn.LeNet2(), 8)
		if err != nil {
			fail = err
			return
		}
		var losses []float32
		for i := 0; i < 3; i++ {
			loss, err := tr.Step(p)
			if err != nil {
				fail = err
				return
			}
			losses = append(losses, loss)
		}
		if losses[0] == losses[1] && losses[1] == losses[2] {
			t.Error("loss identical across steps — weights not updating")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatal(fail)
	}
}

func TestAllModelsOneStepNative(t *testing.T) {
	for _, model := range dnn.TrainingModels() {
		model := model
		t.Run(model.Name, func(t *testing.T) {
			k := sim.NewKernel()
			var fail error
			k.Spawn("main", func(p *sim.Proc) {
				defer k.Stop()
				tr, err := nativeTrainer(p, model, 4)
				if err != nil {
					fail = err
					return
				}
				if _, err := tr.Step(p); err != nil {
					fail = err
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if fail != nil {
				t.Fatal(fail)
			}
		})
	}
}

func TestTrainLeNetOnCRONUSMatchesPaperOverheadBound(t *testing.T) {
	// Measure per-step virtual time natively.
	var nativeTime sim.Duration
	{
		k := sim.NewKernel()
		var fail error
		k.Spawn("main", func(p *sim.Proc) {
			defer k.Stop()
			tr, err := nativeTrainer(p, dnn.LeNet2(), 8)
			if err != nil {
				fail = err
				return
			}
			start := p.Now()
			for i := 0; i < 3; i++ {
				if _, err := tr.Step(p); err != nil {
					fail = err
					return
				}
			}
			nativeTime = sim.Duration(p.Now() - start)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if fail != nil {
			t.Fatal(fail)
		}
	}

	// Same steps inside a CRONUS CUDA mEnclave over sRPC.
	var cronusTime sim.Duration
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		dnn.RegisterKernels(pl.GPUs[0].Dev.SMs())
		s, err := pl.NewSession(p, "train")
		if err != nil {
			return err
		}
		conn, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: dnn.Cubin(), RingPages: 65})
		if err != nil {
			return err
		}
		defer conn.Close(p)
		tr, err := dnn.NewTrainer(p, conn, dnn.LeNet2(), 8)
		if err != nil {
			return err
		}
		start := p.Now()
		for i := 0; i < 3; i++ {
			if _, err := tr.Step(p); err != nil {
				return err
			}
		}
		cronusTime = sim.Duration(p.Now() - start)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	overhead := float64(cronusTime-nativeTime) / float64(nativeTime)
	t.Logf("native %v, cronus %v, overhead %.2f%%", nativeTime, cronusTime, overhead*100)
	if overhead > 0.15 {
		t.Errorf("CRONUS training overhead %.1f%% exceeds the paper's ~7%% band", overhead*100)
	}
	if overhead < 0 {
		t.Error("CRONUS cannot be faster than native")
	}
}

func TestGradientBytesAccounting(t *testing.T) {
	k := sim.NewKernel()
	var fail error
	k.Spawn("main", func(p *sim.Proc) {
		defer k.Stop()
		tr, err := nativeTrainer(p, dnn.LeNet2(), 8)
		if err != nil {
			fail = err
			return
		}
		want := 0
		for _, l := range dnn.LeNet2().Layers {
			want += l.K * l.N * 4
		}
		if tr.GradientBytes() != want {
			t.Errorf("gradient bytes %d, want %d", tr.GradientBytes(), want)
		}
		if len(tr.GradPtrs()) != len(dnn.LeNet2().Layers) {
			t.Error("gradient pointer count mismatch")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatal(fail)
	}
}
