package dnn

import "fmt"

// Layer is one trainable layer lowered to its im2col matmul shape: for a
// batch of size B the forward pass computes Out[B·Spatial, N] =
// In[B·Spatial, K] × W[K, N] followed by a ReLU (except the classifier).
type Layer struct {
	Name    string
	Spatial int // output positions per sample (H·W); 1 for fully connected
	K       int // contraction size (Cin·k² or input features)
	N       int // output channels / features
}

// Rows returns the matmul M dimension at a batch size.
func (l Layer) Rows(batch int) int { return batch * l.Spatial }

// FLOPs returns the forward FLOPs of the layer at a batch size.
func (l Layer) FLOPs(batch int) float64 {
	return 2 * float64(l.Rows(batch)) * float64(l.K) * float64(l.N)
}

// Model is a structural DNN definition.
type Model struct {
	Name    string
	Dataset string
	// InputFloats is the per-sample input size the host uploads each
	// iteration (dataset-determined).
	InputFloats int
	Layers      []Layer
}

// FLOPs returns the total forward FLOPs per iteration.
func (m *Model) FLOPs(batch int) float64 {
	var s float64
	for _, l := range m.Layers {
		s += l.FLOPs(batch)
	}
	return s
}

// String implements fmt.Stringer.
func (m *Model) String() string {
	return fmt.Sprintf("%s(%d layers, %s)", m.Name, len(m.Layers), m.Dataset)
}

// The models below are the paper's four training networks (§VI-C), with
// channel and spatial dimensions scaled down by the noted factors so the
// simulation's functional matmuls stay laptop-sized. Layer counts and the
// relative size distribution across layers — which determine the per
// iteration RPC/kernel stream CRONUS's overhead applies to — follow the
// real architectures.

// LeNet2 is LeNet on MNIST (28×28 grayscale): 2 conv + 3 FC layers.
func LeNet2() *Model {
	return &Model{
		Name:        "LeNet-2",
		Dataset:     "MNIST",
		InputFloats: 28 * 28,
		Layers: []Layer{
			{Name: "conv1", Spatial: 144, K: 25, N: 6},  // 5×5×1 → 6
			{Name: "conv2", Spatial: 25, K: 150, N: 16}, // 5×5×6 → 16
			{Name: "fc1", Spatial: 1, K: 400, N: 120},
			{Name: "fc2", Spatial: 1, K: 120, N: 84},
			{Name: "fc3", Spatial: 1, K: 84, N: 10},
		},
	}
}

// resBlock appends a bottleneck block (1×1, 3×3, 1×1 convs).
func resBlock(layers []Layer, idx, spatial, cin, cmid, cout int) []Layer {
	return append(layers,
		Layer{Name: fmt.Sprintf("res%d.a", idx), Spatial: spatial, K: cin, N: cmid},
		Layer{Name: fmt.Sprintf("res%d.b", idx), Spatial: spatial, K: cmid * 9, N: cmid},
		Layer{Name: fmt.Sprintf("res%d.c", idx), Spatial: spatial, K: cmid, N: cout},
	)
}

// ResNet50 on CIFAR-10, channels scaled /16, spatial scaled /4.
func ResNet50() *Model {
	var ls []Layer
	ls = append(ls, Layer{Name: "stem", Spatial: 64, K: 3 * 49, N: 16})
	idx := 0
	stage := func(blocks, spatial, cin, cmid, cout int) {
		for b := 0; b < blocks; b++ {
			in := cout
			if b == 0 {
				in = cin
			}
			ls = resBlock(ls, idx, spatial, in, cmid, cout)
			idx++
		}
	}
	stage(3, 64, 16, 8, 16)
	stage(4, 16, 16, 16, 32)
	stage(6, 8, 32, 32, 64)
	stage(3, 2, 64, 64, 128)
	ls = append(ls, Layer{Name: "fc", Spatial: 1, K: 128, N: 10})
	return &Model{Name: "ResNet50", Dataset: "CIFAR-10", InputFloats: 3 * 32 * 32, Layers: ls}
}

// VGG16 on CIFAR-10: 13 conv + 3 FC, channels scaled /8.
func VGG16() *Model {
	var ls []Layer
	conv := func(name string, spatial, cin, cout int) {
		ls = append(ls, Layer{Name: name, Spatial: spatial, K: cin * 9, N: cout})
	}
	conv("c1.1", 64, 3, 8)
	conv("c1.2", 64, 8, 8)
	conv("c2.1", 16, 8, 16)
	conv("c2.2", 16, 16, 16)
	conv("c3.1", 4, 16, 32)
	conv("c3.2", 4, 32, 32)
	conv("c3.3", 4, 32, 32)
	conv("c4.1", 2, 32, 64)
	conv("c4.2", 2, 64, 64)
	conv("c4.3", 2, 64, 64)
	conv("c5.1", 1, 64, 64)
	conv("c5.2", 1, 64, 64)
	conv("c5.3", 1, 64, 64)
	ls = append(ls,
		Layer{Name: "fc1", Spatial: 1, K: 64, N: 128},
		Layer{Name: "fc2", Spatial: 1, K: 128, N: 128},
		Layer{Name: "fc3", Spatial: 1, K: 128, N: 10},
	)
	return &Model{Name: "VGG16", Dataset: "CIFAR-10", InputFloats: 3 * 32 * 32, Layers: ls}
}

// DenseNet on ImageNet (input scaled to 64×64, growth rate scaled to 4):
// dense blocks of many small convs — the layer-count-heavy workload.
func DenseNet() *Model {
	var ls []Layer
	ls = append(ls, Layer{Name: "stem", Spatial: 64, K: 3 * 49, N: 8})
	growth := 4
	ch := 8
	idx := 0
	block := func(n, spatial int) {
		for i := 0; i < n; i++ {
			ls = append(ls,
				Layer{Name: fmt.Sprintf("d%d.1x1", idx), Spatial: spatial, K: ch, N: 4 * growth},
				Layer{Name: fmt.Sprintf("d%d.3x3", idx), Spatial: spatial, K: 4 * growth * 9, N: growth},
			)
			ch += growth
			idx++
		}
	}
	trans := func(spatial int) {
		ch /= 2
		ls = append(ls, Layer{Name: fmt.Sprintf("t%d", idx), Spatial: spatial, K: ch * 2, N: ch})
	}
	block(6, 16)
	trans(16)
	block(12, 4)
	trans(4)
	block(16, 2)
	trans(2)
	block(16, 1)
	ls = append(ls, Layer{Name: "fc", Spatial: 1, K: ch, N: 100})
	return &Model{Name: "DenseNet", Dataset: "ImageNet", InputFloats: 3 * 64 * 64, Layers: ls}
}

// TrainingModels returns the four Figure 8 networks in paper order.
func TrainingModels() []*Model {
	return []*Model{LeNet2(), ResNet50(), VGG16(), DenseNet()}
}
