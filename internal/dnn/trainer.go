package dnn

import (
	"fmt"
	"math"
	"math/rand"

	"cronus/internal/accel"
	"cronus/internal/gpu"
	"cronus/internal/sim"
)

// Trainer runs mini-batch SGD for one model on one CUDA execution context
// (CRONUS enclave, a baseline, or native). Each Step emits the full per
// iteration stream a framework like PyTorch would: input upload, one
// forward matmul + activation per layer, a loss readback (the iteration's
// synchronization point), backward matmuls, SGD weight updates, and a final
// barrier.
type Trainer struct {
	ops   accel.CUDA
	model *Model
	batch int
	ds    *Dataset
	lr    float32

	x    uint64 // raw input staging (batch × InputFloats)
	tgt  uint64 // target one-hot block (last layer M×N)
	loss uint64 // scalar loss cell

	w, in, out     []uint64 // per layer: weights, im2col input, output
	dw, din, dout  []uint64 // per layer gradients
	inLen, outLen  []int    // element counts
	wLen           []int
	Steps          int
	BytesPerUpload int
}

// NewTrainer allocates and initializes all device state through ops.
func NewTrainer(p *sim.Proc, ops accel.CUDA, model *Model, batch int) (*Trainer, error) {
	if batch <= 0 {
		batch = 8
	}
	t := &Trainer{
		ops:   ops,
		model: model,
		batch: batch,
		ds:    ForModel(model),
		lr:    1e-4,
	}
	n := len(model.Layers)
	t.w = make([]uint64, n)
	t.in = make([]uint64, n)
	t.out = make([]uint64, n)
	t.dw = make([]uint64, n)
	t.din = make([]uint64, n)
	t.dout = make([]uint64, n)
	t.inLen = make([]int, n)
	t.outLen = make([]int, n)
	t.wLen = make([]int, n)

	alloc := func(elems int) (uint64, error) {
		return ops.MemAlloc(p, uint64(elems)*4)
	}
	var err error
	if t.x, err = alloc(batch * model.InputFloats); err != nil {
		return nil, err
	}
	t.BytesPerUpload = batch * model.InputFloats * 4
	rng := rand.New(rand.NewSource(42))
	for l, layer := range model.Layers {
		m := layer.Rows(batch)
		t.inLen[l] = m * layer.K
		t.outLen[l] = m * layer.N
		t.wLen[l] = layer.K * layer.N
		if t.w[l], err = alloc(t.wLen[l]); err != nil {
			return nil, err
		}
		if t.in[l], err = alloc(t.inLen[l]); err != nil {
			return nil, err
		}
		if t.out[l], err = alloc(t.outLen[l]); err != nil {
			return nil, err
		}
		if t.dw[l], err = alloc(t.wLen[l]); err != nil {
			return nil, err
		}
		if t.din[l], err = alloc(t.inLen[l]); err != nil {
			return nil, err
		}
		if t.dout[l], err = alloc(t.outLen[l]); err != nil {
			return nil, err
		}
		// Xavier-style init keeps activations bounded through deep nets.
		scale := float32(1 / (2 * math.Sqrt(float64(layer.K))))
		init := make([]float32, t.wLen[l])
		for i := range init {
			init[i] = (rng.Float32()*2 - 1) * scale
		}
		if err := ops.HtoD(p, t.w[l], gpu.PackF32(init)); err != nil {
			return nil, err
		}
	}
	last := n - 1
	if t.tgt, err = alloc(t.outLen[last]); err != nil {
		return nil, err
	}
	if t.loss, err = alloc(1); err != nil {
		return nil, err
	}
	if err := ops.Sync(p); err != nil {
		return nil, err
	}
	return t, nil
}

// Step runs one training iteration and returns the (synchronously read)
// scalar loss.
func (t *Trainer) Step(p *sim.Proc) (float32, error) {
	m := t.model
	n := len(m.Layers)
	last := n - 1

	// ① Upload the mini-batch (the data enters through the protected
	// channel; volume is the dataset's true per-batch size).
	inputs, labels := t.ds.Batch(t.batch)
	if err := t.ops.HtoD(p, t.x, gpu.PackF32(inputs)); err != nil {
		return 0, err
	}
	// Device-side im2col of the raw input into layer 0's input layout.
	if err := t.ops.Launch(p, "im2col", gpu.Dim{t.inLen[0], 1, 1},
		t.x, t.in[0], uint64(len(inputs))); err != nil {
		return 0, err
	}

	// ② Forward.
	for l, layer := range m.Layers {
		mm := layer.Rows(t.batch)
		if err := t.ops.Launch(p, "matmul_f", gpu.Dim{1, 1, 1},
			t.in[l], t.w[l], t.out[l], uint64(mm), uint64(layer.N), uint64(layer.K)); err != nil {
			return 0, err
		}
		if l < last {
			if err := t.ops.Launch(p, "relu", gpu.Dim{t.outLen[l], 1, 1}, t.out[l], t.out[l]); err != nil {
				return 0, err
			}
			if err := t.ops.Launch(p, "im2col", gpu.Dim{t.inLen[l+1], 1, 1},
				t.out[l], t.in[l+1], uint64(t.outLen[l])); err != nil {
				return 0, err
			}
		}
	}

	// ③ Loss: dout_last = (logits - onehot)/batch; loss = Σ dout_last.
	onehot := make([]float32, t.outLen[last])
	classes := m.Layers[last].N
	for i, lab := range labels {
		onehot[i*classes+lab%classes] = 1
	}
	if err := t.ops.HtoD(p, t.tgt, gpu.PackF32(onehot)); err != nil {
		return 0, err
	}
	if err := t.ops.Launch(p, "sub", gpu.Dim{t.outLen[last], 1, 1}, t.out[last], t.tgt, t.dout[last]); err != nil {
		return 0, err
	}
	if err := t.ops.Launch(p, "scale", gpu.Dim{t.outLen[last], 1, 1}, t.dout[last], gpu.FloatBits(1/float32(t.batch))); err != nil {
		return 0, err
	}
	if err := t.ops.Launch(p, "reduce_sum", gpu.Dim{t.outLen[last], 1, 1}, t.dout[last], t.loss); err != nil {
		return 0, err
	}
	lossBytes, err := t.ops.DtoH(p, t.loss, 4) // the PyTorch loss.item() sync
	if err != nil {
		return 0, err
	}

	// ④ Backward + SGD update.
	for l := last; l >= 0; l-- {
		layer := m.Layers[l]
		mm := layer.Rows(t.batch)
		if l < last {
			// Gradient flows back through the reshape and the ReLU.
			if err := t.ops.Launch(p, "im2col", gpu.Dim{t.outLen[l], 1, 1},
				t.din[l+1], t.dout[l], uint64(t.inLen[l+1])); err != nil {
				return 0, err
			}
			if err := t.ops.Launch(p, "relu_bwd", gpu.Dim{t.outLen[l], 1, 1},
				t.out[l], t.dout[l], t.dout[l]); err != nil {
				return 0, err
			}
		}
		// dW = Xᵀ·dY; dX = dY·Wᵀ.
		if err := t.ops.Launch(p, "matmul_tn", gpu.Dim{1, 1, 1},
			t.in[l], t.dout[l], t.dw[l], uint64(layer.K), uint64(layer.N), uint64(mm)); err != nil {
			return 0, err
		}
		if err := t.ops.Launch(p, "matmul_nt", gpu.Dim{1, 1, 1},
			t.dout[l], t.w[l], t.din[l], uint64(mm), uint64(layer.K), uint64(layer.N)); err != nil {
			return 0, err
		}
		if err := t.ops.Launch(p, "saxpy", gpu.Dim{t.wLen[l], 1, 1},
			t.dw[l], t.w[l], gpu.FloatBits(-t.lr)); err != nil {
			return 0, err
		}
	}

	// ⑤ End-of-iteration barrier.
	if err := t.ops.Sync(p); err != nil {
		return 0, err
	}
	t.Steps++
	loss := gpu.UnpackF32(lossBytes)[0]
	if math.IsNaN(float64(loss)) || math.IsInf(float64(loss), 0) {
		return loss, fmt.Errorf("dnn: non-finite loss at step %d", t.Steps)
	}
	return loss, nil
}

// GradientBytes returns the total gradient volume exchanged per iteration
// in data-parallel training (Figure 11b's all-reduce payload).
func (t *Trainer) GradientBytes() int {
	total := 0
	for _, n := range t.wLen {
		total += n * 4
	}
	return total
}

// GradPtrs exposes the per-layer gradient buffers (multi-GPU exchange).
func (t *Trainer) GradPtrs() []uint64 { return t.dw }

// WeightLens exposes per-layer weight element counts.
func (t *Trainer) WeightLens() []int { return t.wLen }
