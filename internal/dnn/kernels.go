// Package dnn is the minimal DNN training and inference framework used to
// reproduce the paper's PyTorch workloads (§VI-C): structural definitions of
// LeNet-2, ResNet50, VGG16 and DenseNet, a GPU trainer that emits the same
// kind of kernel/memcpy streams per iteration (forward matmuls, activation
// kernels, backward matmuls, SGD updates), and deterministic synthetic
// datasets standing in for MNIST, CIFAR-10 and ImageNet.
//
// Convolutions are lowered to their im2col matmul shapes, and all model
// dimensions are scaled down by a documented factor so simulations stay
// laptop-sized; the *stream structure* per iteration (layer count, kernel
// sizes relative to each other, sync points) is what the paper's overhead
// measurements are sensitive to, and that is preserved.
package dnn

import (
	"cronus/internal/gpu"
	"cronus/internal/sim"
)

// kernelDemand models how many SMs a layer's kernel occupies: small layers
// (LeNet) underfill the GPU — which is exactly why spatial sharing pays off
// in Figure 11a — while large conv layers saturate it.
func kernelDemand(sms float64, outElems int) float64 {
	d := float64(outElems) / 96
	if d < 10 {
		d = 10
	}
	if d > sms {
		d = sms
	}
	return d
}

// trainKernelFloor is the minimum execution time of a training kernel:
// small-layer kernels are memory-latency bound, not FLOP bound.
const trainKernelFloor = 40 * sim.Microsecond

// trainCost builds the cost model for a backward/forward matmul-style
// kernel: 2*M*N*K flops at a demand derived from the output size, floored
// at the latency-bound minimum.
func trainCost(sms float64, flops func(args []uint64) float64, outElems func(args []uint64) int) func(gpu.Dim, []uint64) gpu.LaunchCost {
	return func(_ gpu.Dim, args []uint64) gpu.LaunchCost {
		demand := kernelDemand(sms, outElems(args))
		rate := 8000.0 * demand / sms // FLOPs per ns at this occupancy
		work := sim.Duration(flops(args) / rate)
		if work < trainKernelFloor {
			work = trainKernelFloor
		}
		return gpu.LaunchCost{Work: work, SMDemand: demand}
	}
}

// RegisterKernels installs the training kernels (in addition to the
// standard library): transposed matmuls for the backward pass and the ReLU
// gradient. sms is the target device's SM count.
func RegisterKernels(sms float64) {
	// matmul_f: C[M,N] = A[M,K] × B[K,N]; args a, b, c, M, N, K.
	// Same semantics as the std "matmul" but with the occupancy model
	// driven by layer size (used for both forward and backward passes).
	mm := func(name string, aT, bT bool) {
		gpu.Register(&gpu.Kernel{
			Name: name,
			Cost: trainCost(sms,
				func(args []uint64) float64 {
					return 2 * float64(args[3]) * float64(args[4]) * float64(args[5])
				},
				func(args []uint64) int { return int(args[3] * args[4]) },
			),
			Func: func(e *gpu.Exec) error {
				m, n, k := int(e.Arg(3)), int(e.Arg(4)), int(e.Arg(5))
				asz, bsz := m*k, k*n
				if aT {
					asz = k * m
				}
				if bT {
					bsz = n * k
				}
				ab, err := e.Bytes(e.Arg(0), asz*4)
				if err != nil {
					return err
				}
				bb, err := e.Bytes(e.Arg(1), bsz*4)
				if err != nil {
					return err
				}
				cb, err := e.Bytes(e.Arg(2), m*n*4)
				if err != nil {
					return err
				}
				a, b := gpu.UnpackF32(ab), gpu.UnpackF32(bb)
				c := make([]float32, m*n)
				for i := 0; i < m; i++ {
					for t := 0; t < k; t++ {
						var av float32
						if aT {
							av = a[t*m+i] // A is stored K×M
						} else {
							av = a[i*k+t]
						}
						if av == 0 {
							continue
						}
						ci := i * n
						if bT {
							// B stored N×K: walk the K-th column.
							for j := 0; j < n; j++ {
								c[ci+j] += av * b[j*k+t]
							}
						} else {
							br := b[t*n : (t+1)*n]
							for j := 0; j < n; j++ {
								c[ci+j] += av * br[j]
							}
						}
					}
				}
				copy(cb, gpu.PackF32(c))
				return nil
			},
		})
	}
	mm("matmul_f", false, false) // forward: Y = X·W
	mm("matmul_tn", true, false) // dW = Xᵀ·dY (X passed as K×M)
	mm("matmul_nt", false, true) // dX = dY·Wᵀ (W passed as N×K)

	// im2col: dst[i] = src[i mod srcN] — the layout shuffle between a
	// layer's output and the next layer's im2col input (and its adjoint
	// on the backward pass). args src, dst, srcN; grid [dstN].
	gpu.Register(&gpu.Kernel{
		Name: "im2col",
		Cost: gpu.FlopCost(sms, sms*0.4, func(g gpu.Dim, _ []uint64) float64 { return float64(g.Elems()) }),
		Func: func(e *gpu.Exec) error {
			dstN := e.Grid.Elems()
			srcN := int(e.Arg(2))
			if srcN <= 0 {
				return nil
			}
			sb, err := e.Bytes(e.Arg(0), srcN*4)
			if err != nil {
				return err
			}
			db, err := e.Bytes(e.Arg(1), dstN*4)
			if err != nil {
				return err
			}
			src, dst := gpu.F32(sb), gpu.F32(db)
			for i := 0; i < dstN; i++ {
				dst.Set(i, src.Get(i%srcN))
			}
			return nil
		},
	})

	// relu_bwd: dx[i] = x[i] > 0 ? dy[i] : 0; args x, dy, dx; grid [n].
	gpu.Register(&gpu.Kernel{
		Name: "relu_bwd",
		Cost: gpu.FlopCost(sms, sms*0.4, func(g gpu.Dim, _ []uint64) float64 { return float64(g.Elems()) }),
		Func: func(e *gpu.Exec) error {
			n := e.Grid.Elems()
			xb, err := e.Bytes(e.Arg(0), n*4)
			if err != nil {
				return err
			}
			dyb, err := e.Bytes(e.Arg(1), n*4)
			if err != nil {
				return err
			}
			dxb, err := e.Bytes(e.Arg(2), n*4)
			if err != nil {
				return err
			}
			x, dy, dx := gpu.F32(xb), gpu.F32(dyb), gpu.F32(dxb)
			for i := 0; i < n; i++ {
				if x.Get(i) > 0 {
					dx.Set(i, dy.Get(i))
				} else {
					dx.Set(i, 0)
				}
			}
			return nil
		},
	})
}

// Cubin returns the module image for training enclaves.
func Cubin() []byte {
	return gpu.BuildCubin(
		"matmul_f", "matmul_tn", "matmul_nt", "im2col",
		"relu", "relu_bwd", "sub", "saxpy", "scale", "reduce_sum",
	)
}
