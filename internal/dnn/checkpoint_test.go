package dnn_test

import (
	"errors"
	"testing"

	"cronus/internal/core"
	"cronus/internal/dnn"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/srpc"
)

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	var fail error
	k.Spawn("main", func(p *sim.Proc) {
		defer k.Stop()
		tr, err := nativeTrainer(p, dnn.LeNet2(), 8)
		if err != nil {
			fail = err
			return
		}
		for i := 0; i < 2; i++ {
			if _, err := tr.Step(p); err != nil {
				fail = err
				return
			}
		}
		ck, err := tr.Checkpoint(p)
		if err != nil {
			fail = err
			return
		}
		if ck.Step != 2 {
			t.Errorf("checkpoint step = %d", ck.Step)
		}
		// One more step mutates the weights; restore must bring them back.
		if _, err := tr.Step(p); err != nil {
			fail = err
			return
		}
		ck2, _ := tr.Checkpoint(p)
		if ck2.Weights[0][0] == ck.Weights[0][0] && ck2.Weights[2][5] == ck.Weights[2][5] {
			t.Error("weights did not change across a step")
		}
		if err := tr.Restore(p, ck); err != nil {
			fail = err
			return
		}
		ck3, _ := tr.Checkpoint(p)
		for l := range ck.Weights {
			for i := range ck.Weights[l] {
				if ck3.Weights[l][i] != ck.Weights[l][i] {
					t.Fatalf("layer %d weight %d not restored", l, i)
				}
			}
		}
		if tr.Steps != 2 {
			t.Errorf("restored step counter = %d", tr.Steps)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatal(fail)
	}
}

func TestRestoreValidatesShape(t *testing.T) {
	k := sim.NewKernel()
	var fail error
	k.Spawn("main", func(p *sim.Proc) {
		defer k.Stop()
		tr, err := nativeTrainer(p, dnn.LeNet2(), 8)
		if err != nil {
			fail = err
			return
		}
		if err := tr.Restore(p, &dnn.Checkpoint{Model: "VGG16"}); err == nil {
			t.Error("cross-model restore accepted")
		}
		if err := tr.Restore(p, &dnn.Checkpoint{Model: "LeNet-2", Weights: make([][]float32, 1)}); err == nil {
			t.Error("wrong layer count accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatal(fail)
	}
}

// The full recovery story: train in a CUDA mEnclave, checkpoint, crash the
// partition, resubmit into the recovered incarnation, restore, continue.
func TestCheckpointSurvivesPartitionFailure(t *testing.T) {
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		dnn.RegisterKernels(pl.GPUs[0].Dev.SMs())
		s, err := pl.NewSession(p, "ck-train")
		if err != nil {
			return err
		}
		conn, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: dnn.Cubin(), RingPages: 65})
		if err != nil {
			return err
		}
		tr, err := dnn.NewTrainer(p, conn, dnn.LeNet2(), 8)
		if err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			if _, err := tr.Step(p); err != nil {
				return err
			}
		}
		ck, err := tr.Checkpoint(p)
		if err != nil {
			return err
		}

		// Crash: all device state (weights included) is scrubbed (A3).
		pl.SPM.Fail(pl.GPUs[0].Part, spm.FailPanic)
		if _, err := tr.Step(p); !errors.Is(err, srpc.ErrPeerFailed) {
			t.Errorf("step after crash: err = %v", err)
		}
		pl.SPM.AwaitReady(p, pl.GPUs[0].Part)
		p.Sleep(sim.Millisecond)

		// Resubmit: fresh enclave, fresh trainer, restore the checkpoint.
		conn2, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: dnn.Cubin(), RingPages: 65, Name: "ck-train/cuda2"})
		if err != nil {
			return err
		}
		defer conn2.Close(p)
		tr2, err := dnn.NewTrainer(p, conn2, dnn.LeNet2(), 8)
		if err != nil {
			return err
		}
		if err := tr2.Restore(p, ck); err != nil {
			return err
		}
		got, err := tr2.Checkpoint(p)
		if err != nil {
			return err
		}
		if got.Weights[2][7] != ck.Weights[2][7] {
			t.Error("restored weights differ from the checkpoint")
		}
		if _, err := tr2.Step(p); err != nil {
			return err
		}
		if tr2.Steps != 3 {
			t.Errorf("training resumed at step %d, want 3", tr2.Steps)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
