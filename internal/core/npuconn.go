package core

import (
	"fmt"

	"cronus/internal/accel"
	"cronus/internal/attest"
	"cronus/internal/enclave"
	"cronus/internal/mos/driver"
	"cronus/internal/npu"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/srpc"
)

// NPUOptions configures an NPU mEnclave connection.
type NPUOptions struct {
	// Program is an optional pre-verified instruction image
	// (driver.EncodeInsns); streams may also be submitted dynamically.
	Program []byte
	// Memory is the manifest resource cap (default "64M").
	Memory string
	// RingPages sizes the sRPC region (default 17).
	RingPages int
	// Partition pins placement; Name labels the enclave.
	Partition string
	Name      string
}

// NPUConn is a connected NPU mEnclave implementing accel.NPU.
type NPUConn struct {
	sess   *Session
	client *srpc.Client
	EID    uint32
	chunk  int
}

var _ accel.NPU = (*NPUConn)(nil)

// OpenNPU creates an NPU mEnclave and connects the sRPC stream.
func (s *Session) OpenNPU(p *sim.Proc, opts NPUOptions) (*NPUConn, error) {
	if opts.Memory == "" {
		opts.Memory = "64M"
	}
	if opts.Name == "" {
		opts.Name = s.Name + "/npu"
	}
	files := map[string][]byte{
		"npu.edl": driver.NPUEDL(),
	}
	imageName := ""
	if len(opts.Program) > 0 {
		files["prog.vta"] = opts.Program
		imageName = "prog.vta"
	}
	man := enclave.NewManifest("npu", "npu.edl", imageName, files, enclave.Resources{Memory: opts.Memory})
	dh, err := attest.NewDHKey([]byte(s.Name + "/" + opts.Name))
	if err != nil {
		return nil, err
	}
	var eid uint32
	var dhPub []byte
	var hash attest.Measurement
	if opts.Partition != "" {
		r, err := s.Platform.D.CreateEnclaveAt(p, opts.Partition, opts.Name, man, files, dh.Pub)
		if err != nil {
			return nil, err
		}
		eid, dhPub, hash = r.EID, r.DHPub, r.Hash
	} else {
		r, err := s.Platform.D.CreateEnclave(p, opts.Name, man, files, dh.Pub)
		if err != nil {
			return nil, err
		}
		eid, dhPub, hash = r.EID, r.DHPub, r.Hash
	}
	secret, err := dh.Shared(dhPub)
	if err != nil {
		return nil, err
	}
	edl, err := enclave.ParseEDL(files["npu.edl"])
	if err != nil {
		return nil, err
	}
	part, ok := s.Platform.SPM.Partition(spm.PartitionID(eid >> 24))
	if !ok {
		return nil, fmt.Errorf("core: partition vanished for eid %#x", eid)
	}
	client, err := srpc.Connect(p, s.owner, eid, secret, edl,
		srpc.Expected{EnclaveHash: man.Measure(files), MOSHash: part.MOSHash()},
		s.Platform.D, opts.RingPages)
	if err != nil {
		return nil, err
	}
	s.manifests[opts.Name] = hash
	pages := opts.RingPages
	if pages < 2 {
		pages = srpc.DefaultPages
	}
	chunk := (pages - 1) * 4096 / 4
	if chunk < srpc.SlotSize {
		chunk = srpc.SlotSize
	}
	return &NPUConn{sess: s, client: client, EID: eid, chunk: chunk}, nil
}

// Client exposes the underlying stream.
func (c *NPUConn) Client() *srpc.Client { return c.client }

// MemAlloc implements accel.NPU.
func (c *NPUConn) MemAlloc(p *sim.Proc, n uint64) (uint64, error) {
	res, err := c.client.Call(p, driver.CallVTAMemAlloc, driver.EncodeMemAlloc(n))
	if err != nil {
		return 0, err
	}
	return driver.DecodePtr(res)
}

// HtoD implements accel.NPU (asynchronous, chunked).
func (c *NPUConn) HtoD(p *sim.Proc, dst uint64, data []byte) error {
	for off := 0; off < len(data); off += c.chunk {
		end := off + c.chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := c.client.Call(p, driver.CallVTAHtoD, driver.EncodeHtoD(dst+uint64(off), data[off:end])); err != nil {
			return err
		}
	}
	return nil
}

// DtoH implements accel.NPU (synchronous, chunked).
func (c *NPUConn) DtoH(p *sim.Proc, src uint64, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for off := 0; off < n; off += c.chunk {
		end := off + c.chunk
		if end > n {
			end = n
		}
		res, err := c.client.CallSyncCap(p, driver.CallVTADtoH,
			driver.EncodeDtoH(src+uint64(off), uint64(end-off)), end-off+64)
		if err != nil {
			return nil, err
		}
		blob, err := driver.DecodeBlob(res)
		if err != nil {
			return nil, err
		}
		out = append(out, blob...)
	}
	return out, nil
}

// Run implements accel.NPU (asynchronous instruction stream submission).
func (c *NPUConn) Run(p *sim.Proc, insns []npu.Insn) error {
	_, err := c.client.Call(p, driver.CallVTARun, driver.EncodeInsns(insns))
	return err
}

// Sync implements accel.NPU.
func (c *NPUConn) Sync(p *sim.Proc) error { return c.client.Barrier(p) }

// Close implements accel.NPU.
func (c *NPUConn) Close(p *sim.Proc) error { return c.client.Close(p) }
