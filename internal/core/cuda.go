package core

import (
	"fmt"

	"cronus/internal/accel"
	"cronus/internal/attest"
	"cronus/internal/enclave"
	"cronus/internal/gpu"
	"cronus/internal/mos/driver"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/srpc"
)

// CUDAOptions configures a CUDA mEnclave connection.
type CUDAOptions struct {
	// Cubin is the module image (gpu.BuildCubin). Required.
	Cubin []byte
	// Memory is the manifest resource cap (default "128M").
	Memory string
	// RingPages sizes the sRPC shared-memory region (default 17 pages).
	RingPages int
	// Partition pins the enclave to a named GPU partition (default:
	// dispatcher round-robin across GPU partitions).
	Partition string
	// Name labels the enclave (default derived from the session).
	Name string
	// Rings opens that many parallel sRPC streams to the enclave (default
	// 1), each with its own executor thread, so independent batches never
	// contend on one ring's doorbell. Ring(i) selects a stream; the
	// zero-argument methods use ring 0.
	Rings int
	// ZCPayload, when positive, grants a zero-copy payload arena on every
	// ring sized for fused ExecZC calls of up to this many bytes.
	ZCPayload int
}

// CUDAConn is a connected CUDA mEnclave: the session's typed handle over
// the sRPC stream. It implements accel.CUDA, chunking transfers larger than
// the ring.
type CUDAConn struct {
	sess   *Session
	client *srpc.Client   // ring 0 (also rings[0])
	rings  []*srpc.Client // all parallel streams to the enclave
	EID    uint32
	chunk  int
}

var _ accel.CUDA = (*CUDAConn)(nil)

// OpenCUDA creates a CUDA mEnclave (the session's CPU enclave is the owner)
// and establishes the sRPC stream to it: manifest build, dispatch, local
// attestation, smem sharing, dCheck, executor creation (§III-D, §IV-C).
func (s *Session) OpenCUDA(p *sim.Proc, opts CUDAOptions) (*CUDAConn, error) {
	if len(opts.Cubin) == 0 {
		return nil, fmt.Errorf("core: OpenCUDA requires a cubin image")
	}
	if opts.Memory == "" {
		opts.Memory = "128M"
	}
	if opts.Name == "" {
		opts.Name = s.Name + "/cuda"
	}
	files := map[string][]byte{
		"cuda.edl":  driver.CUDAEDL(),
		"app.cubin": opts.Cubin,
	}
	man := enclave.NewManifest("gpu", "cuda.edl", "app.cubin", files, enclave.Resources{Memory: opts.Memory})
	dh, err := attest.NewDHKey([]byte(s.Name + "/" + opts.Name))
	if err != nil {
		return nil, err
	}
	var res *createResult
	if opts.Partition != "" {
		r, err := s.Platform.D.CreateEnclaveAt(p, opts.Partition, opts.Name, man, files, dh.Pub)
		if err != nil {
			return nil, err
		}
		res = &createResult{r.EID, r.DHPub, r.Hash}
	} else {
		r, err := s.Platform.D.CreateEnclave(p, opts.Name, man, files, dh.Pub)
		if err != nil {
			return nil, err
		}
		res = &createResult{r.EID, r.DHPub, r.Hash}
	}
	secret, err := dh.Shared(res.dhPub)
	if err != nil {
		return nil, err
	}
	edl, err := enclave.ParseEDL(files["cuda.edl"])
	if err != nil {
		return nil, err
	}
	part, ok := s.Platform.SPM.Partition(spm.PartitionID(res.eid >> 24))
	if !ok {
		return nil, fmt.Errorf("core: partition vanished for eid %#x", res.eid)
	}
	nrings := opts.Rings
	if nrings < 1 {
		nrings = 1
	}
	expected := srpc.Expected{EnclaveHash: man.Measure(files), MOSHash: part.MOSHash()}
	rings := make([]*srpc.Client, 0, nrings)
	for i := 0; i < nrings; i++ {
		client, err := srpc.Connect(p, s.owner, res.eid, secret, edl, expected,
			s.Platform.D, opts.RingPages)
		if err != nil {
			return nil, err
		}
		if opts.ZCPayload > 0 {
			if err := client.GrantArena(p, opts.ZCPayload); err != nil {
				return nil, err
			}
		}
		rings = append(rings, client)
	}
	s.manifests[opts.Name] = res.hash
	pages := opts.RingPages
	if pages < 2 {
		pages = srpc.DefaultPages
	}
	// Chunk transfers to a quarter of the ring so streaming overlaps.
	chunk := (pages - 1) * 4096 / 4
	if chunk < srpc.SlotSize {
		chunk = srpc.SlotSize
	}
	return &CUDAConn{sess: s, client: rings[0], rings: rings, EID: res.eid, chunk: chunk}, nil
}

type createResult struct {
	eid   uint32
	dhPub []byte
	hash  attest.Measurement
}

// Client exposes the underlying stream (stats, advanced use).
func (c *CUDAConn) Client() *srpc.Client { return c.client }

// NumRings returns the number of parallel sRPC streams this connection holds.
func (c *CUDAConn) NumRings() int { return len(c.rings) }

// Ring returns a view of the connection bound to stream i (mod NumRings):
// the same enclave, chunking and session, but calls issued through it travel
// the selected ring and executor. Views share lifecycle with the parent —
// Close/Abandon on the parent tears every ring down.
func (c *CUDAConn) Ring(i int) *CUDAConn {
	r := *c
	r.client = c.rings[i%len(c.rings)]
	return &r
}

// ExecZC pushes one fused zero-copy record on this ring: an HtoD of payload
// to dst followed by a kernel launch, with completion (or the first error)
// delivered through notify in the executor's context. Requires ZCPayload in
// the open options. See srpc.CallZC for the no-wait contract.
func (c *CUDAConn) ExecZC(p *sim.Proc, dst uint64, payload []byte, kernel string, grid gpu.Dim, notify srpc.NotifyFn, args ...uint64) error {
	return c.client.CallZC(p, srpc.ZCRequest{
		Payload:  payload,
		CopyCall: driver.CallHtoD,
		Dst:      dst,
		ExecCall: driver.CallLaunch,
		ExecArgs: driver.EncodeLaunch(kernel, grid, args...),
	}, notify)
}

// MemAlloc implements accel.CUDA.
func (c *CUDAConn) MemAlloc(p *sim.Proc, n uint64) (uint64, error) {
	res, err := c.client.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(n))
	if err != nil {
		return 0, err
	}
	return driver.DecodePtr(res)
}

// MemFree implements accel.CUDA.
func (c *CUDAConn) MemFree(p *sim.Proc, ptr uint64) error {
	_, err := c.client.Call(p, driver.CallMemFree, driver.EncodeMemFree(ptr))
	return err
}

// HtoD implements accel.CUDA: asynchronous, chunked to the ring size.
func (c *CUDAConn) HtoD(p *sim.Proc, dst uint64, data []byte) error {
	for off := 0; off < len(data); off += c.chunk {
		end := off + c.chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := c.client.Call(p, driver.CallHtoD, driver.EncodeHtoD(dst+uint64(off), data[off:end])); err != nil {
			return err
		}
	}
	return nil
}

// DtoH implements accel.CUDA: synchronous, chunked.
func (c *CUDAConn) DtoH(p *sim.Proc, src uint64, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for off := 0; off < n; off += c.chunk {
		end := off + c.chunk
		if end > n {
			end = n
		}
		res, err := c.client.CallSyncCap(p, driver.CallDtoH,
			driver.EncodeDtoH(src+uint64(off), uint64(end-off)), end-off+64)
		if err != nil {
			return nil, err
		}
		blob, err := driver.DecodeBlob(res)
		if err != nil {
			return nil, err
		}
		out = append(out, blob...)
	}
	return out, nil
}

// Launch implements accel.CUDA (asynchronous).
func (c *CUDAConn) Launch(p *sim.Proc, kernel string, grid gpu.Dim, args ...uint64) error {
	_, err := c.client.Call(p, driver.CallLaunch, driver.EncodeLaunch(kernel, grid, args...))
	return err
}

// Sync implements accel.CUDA (streamCheck).
func (c *CUDAConn) Sync(p *sim.Proc) error { return c.client.Barrier(p) }

// Abandon tears down the owner side of the connection without draining the
// rings or waiting for the executors — the recovery action after a timed-out
// or corrupted stream, where a graceful Close could block forever. The
// enclave is left to the partition's lifecycle; callers reconnect with a
// fresh OpenCUDA.
func (c *CUDAConn) Abandon() {
	for _, r := range c.rings {
		r.Abandon()
	}
}

// Close implements accel.CUDA: every ring is drained and closed.
func (c *CUDAConn) Close(p *sim.Proc) error {
	var first error
	for _, r := range c.rings {
		if err := r.Close(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}
