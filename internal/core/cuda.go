package core

import (
	"fmt"

	"cronus/internal/accel"
	"cronus/internal/attest"
	"cronus/internal/enclave"
	"cronus/internal/gpu"
	"cronus/internal/mos/driver"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/srpc"
)

// CUDAOptions configures a CUDA mEnclave connection.
type CUDAOptions struct {
	// Cubin is the module image (gpu.BuildCubin). Required.
	Cubin []byte
	// Memory is the manifest resource cap (default "128M").
	Memory string
	// RingPages sizes the sRPC shared-memory region (default 17 pages).
	RingPages int
	// Partition pins the enclave to a named GPU partition (default:
	// dispatcher round-robin across GPU partitions).
	Partition string
	// Name labels the enclave (default derived from the session).
	Name string
}

// CUDAConn is a connected CUDA mEnclave: the session's typed handle over
// the sRPC stream. It implements accel.CUDA, chunking transfers larger than
// the ring.
type CUDAConn struct {
	sess   *Session
	client *srpc.Client
	EID    uint32
	chunk  int
}

var _ accel.CUDA = (*CUDAConn)(nil)

// OpenCUDA creates a CUDA mEnclave (the session's CPU enclave is the owner)
// and establishes the sRPC stream to it: manifest build, dispatch, local
// attestation, smem sharing, dCheck, executor creation (§III-D, §IV-C).
func (s *Session) OpenCUDA(p *sim.Proc, opts CUDAOptions) (*CUDAConn, error) {
	if len(opts.Cubin) == 0 {
		return nil, fmt.Errorf("core: OpenCUDA requires a cubin image")
	}
	if opts.Memory == "" {
		opts.Memory = "128M"
	}
	if opts.Name == "" {
		opts.Name = s.Name + "/cuda"
	}
	files := map[string][]byte{
		"cuda.edl":  driver.CUDAEDL(),
		"app.cubin": opts.Cubin,
	}
	man := enclave.NewManifest("gpu", "cuda.edl", "app.cubin", files, enclave.Resources{Memory: opts.Memory})
	dh, err := attest.NewDHKey([]byte(s.Name + "/" + opts.Name))
	if err != nil {
		return nil, err
	}
	var res *createResult
	if opts.Partition != "" {
		r, err := s.Platform.D.CreateEnclaveAt(p, opts.Partition, opts.Name, man, files, dh.Pub)
		if err != nil {
			return nil, err
		}
		res = &createResult{r.EID, r.DHPub, r.Hash}
	} else {
		r, err := s.Platform.D.CreateEnclave(p, opts.Name, man, files, dh.Pub)
		if err != nil {
			return nil, err
		}
		res = &createResult{r.EID, r.DHPub, r.Hash}
	}
	secret, err := dh.Shared(res.dhPub)
	if err != nil {
		return nil, err
	}
	edl, err := enclave.ParseEDL(files["cuda.edl"])
	if err != nil {
		return nil, err
	}
	part, ok := s.Platform.SPM.Partition(spm.PartitionID(res.eid >> 24))
	if !ok {
		return nil, fmt.Errorf("core: partition vanished for eid %#x", res.eid)
	}
	client, err := srpc.Connect(p, s.owner, res.eid, secret, edl,
		srpc.Expected{EnclaveHash: man.Measure(files), MOSHash: part.MOSHash()},
		s.Platform.D, opts.RingPages)
	if err != nil {
		return nil, err
	}
	s.manifests[opts.Name] = res.hash
	pages := opts.RingPages
	if pages < 2 {
		pages = srpc.DefaultPages
	}
	// Chunk transfers to a quarter of the ring so streaming overlaps.
	chunk := (pages - 1) * 4096 / 4
	if chunk < srpc.SlotSize {
		chunk = srpc.SlotSize
	}
	return &CUDAConn{sess: s, client: client, EID: res.eid, chunk: chunk}, nil
}

type createResult struct {
	eid   uint32
	dhPub []byte
	hash  attest.Measurement
}

// Client exposes the underlying stream (stats, advanced use).
func (c *CUDAConn) Client() *srpc.Client { return c.client }

// MemAlloc implements accel.CUDA.
func (c *CUDAConn) MemAlloc(p *sim.Proc, n uint64) (uint64, error) {
	res, err := c.client.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(n))
	if err != nil {
		return 0, err
	}
	return driver.DecodePtr(res)
}

// MemFree implements accel.CUDA.
func (c *CUDAConn) MemFree(p *sim.Proc, ptr uint64) error {
	_, err := c.client.Call(p, driver.CallMemFree, driver.EncodeMemFree(ptr))
	return err
}

// HtoD implements accel.CUDA: asynchronous, chunked to the ring size.
func (c *CUDAConn) HtoD(p *sim.Proc, dst uint64, data []byte) error {
	for off := 0; off < len(data); off += c.chunk {
		end := off + c.chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := c.client.Call(p, driver.CallHtoD, driver.EncodeHtoD(dst+uint64(off), data[off:end])); err != nil {
			return err
		}
	}
	return nil
}

// DtoH implements accel.CUDA: synchronous, chunked.
func (c *CUDAConn) DtoH(p *sim.Proc, src uint64, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for off := 0; off < n; off += c.chunk {
		end := off + c.chunk
		if end > n {
			end = n
		}
		res, err := c.client.CallSyncCap(p, driver.CallDtoH,
			driver.EncodeDtoH(src+uint64(off), uint64(end-off)), end-off+64)
		if err != nil {
			return nil, err
		}
		blob, err := driver.DecodeBlob(res)
		if err != nil {
			return nil, err
		}
		out = append(out, blob...)
	}
	return out, nil
}

// Launch implements accel.CUDA (asynchronous).
func (c *CUDAConn) Launch(p *sim.Proc, kernel string, grid gpu.Dim, args ...uint64) error {
	_, err := c.client.Call(p, driver.CallLaunch, driver.EncodeLaunch(kernel, grid, args...))
	return err
}

// Sync implements accel.CUDA (streamCheck).
func (c *CUDAConn) Sync(p *sim.Proc) error { return c.client.Barrier(p) }

// Abandon tears down the owner side of the connection without draining the
// ring or waiting for the executor — the recovery action after a timed-out
// or corrupted stream, where a graceful Close could block forever. The
// enclave is left to the partition's lifecycle; callers reconnect with a
// fresh OpenCUDA.
func (c *CUDAConn) Abandon() { c.client.Abandon() }

// Close implements accel.CUDA.
func (c *CUDAConn) Close(p *sim.Proc) error { return c.client.Close(p) }
