package core_test

import (
	"bytes"
	"strings"
	"testing"

	"cronus/internal/attest"
	"cronus/internal/core"
	"cronus/internal/enclave"
	"cronus/internal/gpu"
	"cronus/internal/mos"
	"cronus/internal/mos/driver"
	"cronus/internal/npu"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/srpc"
)

func TestPlatformBootAndSessionPing(t *testing.T) {
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "app-1")
		if err != nil {
			return err
		}
		out, err := s.Ping(p, []byte("hello enclave"))
		if err != nil {
			return err
		}
		if !bytes.Equal(out, []byte("hello enclave")) {
			t.Errorf("ping echoed %q", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSessionRemoteAttestation(t *testing.T) {
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "app-1")
		if err != nil {
			return err
		}
		g, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add")})
		if err != nil {
			return err
		}
		defer g.Close(p)
		// The client attests the whole closure: session enclave, CUDA
		// enclave, every mOS, and the frozen device tree (§IV-A).
		if err := s.Attest(p, 777); err != nil {
			t.Errorf("remote attestation failed: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenCUDAComputeAndChunkedTransfers(t *testing.T) {
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "app-1")
		if err != nil {
			return err
		}
		g, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add", "saxpy")})
		if err != nil {
			return err
		}
		defer g.Close(p)
		const n = 64 << 10 // 256 KiB buffers: forces chunking on a 64 KiB ring
		a, err := g.MemAlloc(p, n*4)
		if err != nil {
			return err
		}
		b, _ := g.MemAlloc(p, n*4)
		c, _ := g.MemAlloc(p, n*4)
		av := make([]float32, n)
		bv := make([]float32, n)
		for i := range av {
			av[i] = float32(i % 97)
			bv[i] = float32(i % 31)
		}
		if err := g.HtoD(p, a, gpu.PackF32(av)); err != nil {
			return err
		}
		if err := g.HtoD(p, b, gpu.PackF32(bv)); err != nil {
			return err
		}
		if err := g.Launch(p, "vec_add", gpu.Dim{n, 1, 1}, a, b, c); err != nil {
			return err
		}
		out, err := g.DtoH(p, c, n*4)
		if err != nil {
			return err
		}
		got := gpu.UnpackF32(out)
		for i := 0; i < n; i += 997 {
			if got[i] != av[i]+bv[i] {
				t.Errorf("c[%d] = %v, want %v", i, got[i], av[i]+bv[i])
				break
			}
		}
		return g.Sync(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenNPURunsInstructionStream(t *testing.T) {
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "app-1")
		if err != nil {
			return err
		}
		nconn, err := s.OpenNPU(p, core.NPUOptions{})
		if err != nil {
			return err
		}
		defer nconn.Close(p)
		// One GEMM block: load weights + input, multiply, store.
		w := make([]byte, npu.WgtBlockBytes)
		in := make([]byte, npu.InpBlockBytes)
		for i := range w {
			w[i] = byte(int8(i%5 - 2))
		}
		for i := range in {
			in[i] = byte(int8(i%3 - 1))
		}
		wAddr, err := nconn.MemAlloc(p, uint64(len(w)))
		if err != nil {
			return err
		}
		iAddr, _ := nconn.MemAlloc(p, uint64(len(in)))
		oAddr, _ := nconn.MemAlloc(p, npu.OutBlockBytes)
		if err := nconn.HtoD(p, wAddr, w); err != nil {
			return err
		}
		if err := nconn.HtoD(p, iAddr, in); err != nil {
			return err
		}
		err = nconn.Run(p, []npu.Insn{
			{Op: npu.OpLoad, Mem: npu.MemWgt, DRAMAddr: wAddr, Count: 1},
			{Op: npu.OpLoad, Mem: npu.MemInp, DRAMAddr: iAddr, Count: 1},
			{Op: npu.OpGemm, Count: 1, Reset: true},
			{Op: npu.OpCommit, Count: 1},
			{Op: npu.OpStore, Mem: npu.MemOut, DRAMAddr: oAddr, Count: 1},
			{Op: npu.OpFinish},
		})
		if err != nil {
			return err
		}
		out, err := nconn.DtoH(p, oAddr, npu.OutBlockBytes)
		if err != nil {
			return err
		}
		// Reference for lane 0.
		var ref int32
		for k := 0; k < npu.BlockIn; k++ {
			ref += int32(int8(w[k])) * int32(int8(in[k]))
		}
		if int8(out[0]) != int8(ref) {
			t.Errorf("NPU lane 0 = %d, want %d", int8(out[0]), ref)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGPUEnclavePlacementAcrossPartitions(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.GPUs = 2
	err := core.Run(cfg, func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "app-1")
		if err != nil {
			return err
		}
		g0, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add"), Partition: "gpu-part0", Name: "w0"})
		if err != nil {
			return err
		}
		g1, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add"), Partition: "gpu-part1", Name: "w1"})
		if err != nil {
			return err
		}
		if spm.PartitionID(g0.EID>>24) == spm.PartitionID(g1.EID>>24) {
			t.Error("pinned placements landed in the same partition")
		}
		g0.Close(p)
		g1.Close(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGPUPartitionCrashIsolatesOthers(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.GPUs = 2
	err := core.Run(cfg, func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "app-1")
		if err != nil {
			return err
		}
		g0, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add"), Partition: "gpu-part0", Name: "w0"})
		if err != nil {
			return err
		}
		g1, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add"), Partition: "gpu-part1", Name: "w1"})
		if err != nil {
			return err
		}
		pl.SPM.Fail(pl.GPUs[0].Part, spm.FailPanic)
		// g0's stream dies; g1 is completely unaffected (R3.1).
		if _, err := g0.MemAlloc(p, 64); err == nil {
			t.Error("stream to failed partition still works")
		}
		if _, err := g1.MemAlloc(p, 64); err != nil {
			t.Errorf("healthy partition disturbed: %v", err)
		}
		g1.Close(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenCUDARequiresCubin(t *testing.T) {
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "app-1")
		if err != nil {
			return err
		}
		_, err = s.OpenCUDA(p, core.CUDAOptions{})
		if err == nil || !strings.Contains(err.Error(), "cubin") {
			t.Errorf("err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// R3.2 at the full stack: tenant B cannot act on tenant A's enclaves — not
// by invoking its mECalls, not by connecting streams to it.
func TestCrossTenantIsolation(t *testing.T) {
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		alice, err := pl.NewSession(p, "alice")
		if err != nil {
			return err
		}
		g, err := alice.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add"), Name: "alice-gpu"})
		if err != nil {
			return err
		}
		defer g.Close(p)
		// Mallory (another untrusted app) tries to call alice's CUDA
		// enclave with her own channel: no secret_dhke, no service.
		evil := attest.NewChannel([]byte("mallory guesses"), "owner->enclave")
		msg := mos.SealRequest(evil, driver.CallMemAlloc, driver.EncodeMemAlloc(64))
		if _, err := pl.D.InvokeSealed(p, g.EID, msg); err == nil {
			t.Error("cross-tenant mECall accepted")
		}
		// Mallory's session cannot hijack alice's eid for a stream: her
		// session has a different secret, so setup MACs fail.
		mallory, err := pl.NewSession(p, "mallory")
		if err != nil {
			return err
		}
		edl, _ := enclave.ParseEDL(driver.CUDAEDL())
		part, _ := pl.SPM.Partition(spm.PartitionID(g.EID >> 24))
		_, err = srpc.Connect(p, mallory.Owner(), g.EID, []byte("not the secret"), edl,
			srpc.Expected{EnclaveHash: attest.Measurement{}, MOSHash: part.MOSHash()}, pl.D, 0)
		if err == nil {
			t.Error("cross-tenant stream established")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Device OOM inside the callee surfaces as a clean synchronous error
// through the stream, and the stream survives.
func TestDeviceErrorsSurfaceThroughStream(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.GPUMemBytes = 1 << 20
	err := core.Run(cfg, func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "oom")
		if err != nil {
			return err
		}
		g, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add")})
		if err != nil {
			return err
		}
		defer g.Close(p)
		if _, err := g.MemAlloc(p, 16<<20); err == nil || !strings.Contains(err.Error(), "out of device memory") {
			t.Errorf("OOM: err = %v", err)
		}
		// The stream is still healthy.
		if _, err := g.MemAlloc(p, 1024); err != nil {
			t.Errorf("stream broken after device error: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The owner enclave dying mid-stream notifies the callee side cleanly: its
// executor exits via the trap instead of spinning (the mirror of the
// callee-failure case).
func TestOwnerEnclaveDeathStopsExecutor(t *testing.T) {
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "dying-owner")
		if err != nil {
			return err
		}
		g, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add")})
		if err != nil {
			return err
		}
		if _, err := g.MemAlloc(p, 64); err != nil {
			return err
		}
		// The owner (session) enclave fails; its grants are revoked.
		s.Owner().Kill(p)
		// Give the executor time to trap and exit; if it kept spinning
		// the simulation would only end via core.Run's Stop — assert it
		// observed the revocation by checking the stream is dead from
		// the owner's (stale) side too.
		p.Sleep(sim.Millisecond)
		if _, err := g.MemAlloc(p, 64); err == nil {
			t.Error("stream usable after owner enclave death")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Two NPU mEnclaves in one partition: isolated memory, serialized pipeline,
// both make progress (intra-accelerator sharing on the NPU).
func TestTwoNPUEnclavesShareDevice(t *testing.T) {
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "npu-tenants")
		if err != nil {
			return err
		}
		n1, err := s.OpenNPU(p, core.NPUOptions{Name: "npu-a"})
		if err != nil {
			return err
		}
		defer n1.Close(p)
		n2, err := s.OpenNPU(p, core.NPUOptions{Name: "npu-b"})
		if err != nil {
			return err
		}
		defer n2.Close(p)
		a1, err := n1.MemAlloc(p, 256)
		if err != nil {
			return err
		}
		a2, err := n2.MemAlloc(p, 256)
		if err != nil {
			return err
		}
		if err := n1.HtoD(p, a1, bytes.Repeat([]byte{1}, 256)); err != nil {
			return err
		}
		if err := n2.HtoD(p, a2, bytes.Repeat([]byte{2}, 256)); err != nil {
			return err
		}
		// Cross-enclave device pointers do not resolve.
		if _, err := n1.DtoH(p, a2, 16); err == nil {
			t.Error("NPU enclave read its sibling's device memory")
		}
		out1, err := n1.DtoH(p, a1, 16)
		if err != nil {
			return err
		}
		out2, err := n2.DtoH(p, a2, 16)
		if err != nil {
			return err
		}
		if out1[0] != 1 || out2[0] != 2 {
			t.Error("NPU tenants' data mixed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
