// Package core is CRONUS's public API: it boots a complete MicroTEE
// platform (machine, SPM, per-device partitions and mOSes, normal-world
// dispatcher, attestation infrastructure) and gives applications the
// Session abstraction from the paper's workflow (§III-D): a protected CPU
// mEnclave that creates accelerator mEnclaves and drives them over sRPC.
package core

import (
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/gpu"
	"cronus/internal/hw"
	"cronus/internal/metrics"
	"cronus/internal/mos"
	"cronus/internal/mos/driver"
	"cronus/internal/normal"
	"cronus/internal/npu"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/trace"
)

// mRemoteAttests counts full client-side remote attestation round trips.
var mRemoteAttests = metrics.Default.Counter("attest.remote_attestations")

// Config sizes a platform.
type Config struct {
	NormalMemBytes uint64
	SecureMemBytes uint64

	GPUs        int
	GPUMemBytes uint64
	GPUSMs      int
	MPS         bool // spatial sharing on the GPUs

	NPUs        int
	NPUMemBytes uint64

	// Costs overrides the virtual-time cost model (nil = DefaultCosts).
	// Used by the ablation experiments to sweep architectural parameters.
	Costs *sim.CostModel
}

// DefaultConfig mirrors the paper's testbed shape (Table II): one Turing
// GPU, one VTA NPU, 4 GiB of secure memory (scaled down for simulation).
func DefaultConfig() Config {
	return Config{
		NormalMemBytes: 256 << 20,
		SecureMemBytes: 256 << 20,
		GPUs:           1,
		GPUMemBytes:    1 << 30,
		GPUSMs:         46,
		MPS:            true,
		NPUs:           1,
		NPUMemBytes:    256 << 20,
	}
}

// GPUNode bundles one GPU with its partition and mOS.
type GPUNode struct {
	Dev  *gpu.Device
	Part *spm.Partition
	OS   *mos.MOS
}

// NPUNode bundles one NPU with its partition and mOS.
type NPUNode struct {
	Dev  *npu.Device
	Part *spm.Partition
	OS   *mos.MOS
}

// Platform is a booted CRONUS machine.
type Platform struct {
	K     *sim.Kernel
	M     *hw.Machine
	SPM   *spm.SPM
	D     *normal.Dispatcher
	Costs *sim.CostModel

	CPUPart *spm.Partition
	CPUOS   *mos.MOS
	GPUs    []GPUNode
	NPUs    []NPUNode

	Service  *attest.Service
	Verifier *attest.Verifier
}

// BuildPlatform boots a platform inside simulated process p: device tree
// construction and validation, SPM boot (TZASC/TZPC/fuse lock-down), key
// endorsement, partition creation, mOS boot, dispatcher registration.
func BuildPlatform(p *sim.Proc, cfg Config) (*Platform, error) {
	k := p.Kernel()
	costs := cfg.Costs
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	m := hw.NewMachine(hw.Config{NormalMemBytes: cfg.NormalMemBytes, SecureMemBytes: cfg.SecureMemBytes})
	if err := m.Fuses.Burn("platform-rot", []byte("cronus-platform-rot")); err != nil {
		return nil, err
	}

	var gdevs []*gpu.Device
	for i := 0; i < cfg.GPUs; i++ {
		name := fmt.Sprintf("gpu%d", i)
		d := gpu.New(k, costs, gpu.Config{
			Name: name, MemBytes: cfg.GPUMemBytes, SMs: cfg.GPUSMs, CopyEngs: 2,
			MPS: cfg.MPS, KeySeed: "turing/" + name,
		})
		if i == 0 {
			gpu.RegisterStdKernels(d.SMs())
		}
		if _, err := m.Bus.Attach(d, hw.DTNode{
			Name: name, Compatible: "nvidia,turing", Vendor: "nvidia",
			MMIOBase: 0x1000_0000 + uint64(i)*0x100_0000, MMIOSize: 0x100_0000,
			IRQ: 32 + i, Secure: true,
		}); err != nil {
			return nil, err
		}
		gdevs = append(gdevs, d)
	}
	var ndevs []*npu.Device
	for i := 0; i < cfg.NPUs; i++ {
		name := fmt.Sprintf("npu%d", i)
		d := npu.New(k, costs, npu.Config{Name: name, MemBytes: cfg.NPUMemBytes, KeySeed: "vta/" + name})
		if _, err := m.Bus.Attach(d, hw.DTNode{
			Name: name, Compatible: "vta,fsim", Vendor: "vta",
			MMIOBase: 0x3000_0000 + uint64(i)*0x10_0000, MMIOSize: 0x10_0000,
			IRQ: 64 + i, Secure: true,
		}); err != nil {
			return nil, err
		}
		ndevs = append(ndevs, d)
	}

	s, err := spm.Boot(k, m, costs)
	if err != nil {
		return nil, err
	}

	svc := attest.NewService([]byte("cronus-attestation-service"))
	svc.RegisterPlatform(s.RoTPub())
	atkCert, err := svc.EndorseAtK(s.RoTPub(), s.AtKPub, s.ProveAtK())
	if err != nil {
		return nil, err
	}
	s.InstallAtKCert(atkCert)
	nvCA := attest.NewVendorCA("nvidia")
	vtaCA := attest.NewVendorCA("vta")
	verifier := attest.NewVerifier(svc.Identity)
	verifier.TrustVendor("nvidia", nvCA.Identity)
	verifier.TrustVendor("vta", vtaCA.Identity)

	pl := &Platform{
		K: k, M: m, SPM: s, Costs: costs,
		Service: svc, Verifier: verifier,
	}

	pl.CPUPart, err = s.CreatePartition("cpu-part", "", []byte("optee-based CPU mOS image v1"))
	if err != nil {
		return nil, err
	}
	pl.CPUOS, err = mos.Boot(p, s, pl.CPUPart, driver.NewCPU(costs))
	if err != nil {
		return nil, err
	}
	pl.D = normal.NewDispatcher(s)
	pl.D.RegisterMOS(pl.CPUOS)

	for i, d := range gdevs {
		part, err := s.CreatePartition(fmt.Sprintf("gpu-part%d", i), d.Name(), []byte("nouveau+gdev GPU mOS image v1"))
		if err != nil {
			return nil, err
		}
		os, err := mos.Boot(p, s, part, driver.NewGPU(d, costs, "nvidia", nvCA.EndorseDevice(d.PubKey())))
		if err != nil {
			return nil, err
		}
		pl.D.RegisterMOS(os)
		pl.GPUs = append(pl.GPUs, GPUNode{Dev: d, Part: part, OS: os})
	}
	for i, d := range ndevs {
		part, err := s.CreatePartition(fmt.Sprintf("npu-part%d", i), d.Name(), []byte("vta fsim NPU mOS image v1"))
		if err != nil {
			return nil, err
		}
		os, err := mos.Boot(p, s, part, driver.NewNPU(d, costs, "vta", vtaCA.EndorseDevice(d.PubKey())))
		if err != nil {
			return nil, err
		}
		pl.D.RegisterMOS(os)
		pl.NPUs = append(pl.NPUs, NPUNode{Dev: d, Part: part, OS: os})
	}
	return pl, nil
}

// RemoteAttest runs the client-side remote attestation flow (§IV-A): the
// client sends a fresh nonce, the platform returns the signed report, and
// the client verifies the full chain against its trust anchors and pinned
// measurements.
func (pl *Platform) RemoteAttest(p *sim.Proc, nonce uint64, want attest.Expected) error {
	mRemoteAttests.Inc()
	defer trace.Default.Span(p, "attest", "client", "remote-attest")()
	sr := pl.D.BuildReport(p, nonce)
	p.Sleep(pl.Costs.VerifyFixed * 2)
	return pl.Verifier.VerifyReport(sr, want)
}

// Run is a convenience harness: it boots a platform inside a fresh
// simulation, runs body, and stops the simulation when body returns.
func Run(cfg Config, body func(pl *Platform, p *sim.Proc) error) error {
	k := sim.NewKernel()
	var bodyErr error
	k.Spawn("main", func(p *sim.Proc) {
		defer k.Stop()
		pl, err := BuildPlatform(p, cfg)
		if err != nil {
			bodyErr = err
			return
		}
		bodyErr = body(pl, p)
	})
	if err := k.Run(); err != nil {
		k.Shutdown()
		return err
	}
	// Unwind leftover service loops (executors, watchdogs) so repeated
	// simulations do not accumulate goroutines.
	k.Shutdown()
	return bodyErr
}
