package core

import (
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/enclave"
	"cronus/internal/mos"
	"cronus/internal/sim"
)

func init() {
	// The session runtime library: the minimal CPU mEnclave image that
	// hosts an application's trusted CPU-side logic. Real deployments
	// load application .so files; the simulation's session body is Go
	// code executing with the enclave's identity.
	enclave.RegisterCPULibrary(&enclave.CPULibrary{
		Name: "cronus-session-runtime",
		Funcs: map[string]enclave.CPUFunc{
			"ping": func(p *sim.Proc, args []byte) ([]byte, error) {
				return args, nil
			},
			"seal_result": func(p *sim.Proc, args []byte) ([]byte, error) {
				// Placeholder for result sealing; payload echoed.
				return args, nil
			},
		},
	})
}

// SessionEDL is the mECall surface of the session's CPU mEnclave.
func SessionEDL() []byte {
	return enclave.BuildEDL(
		enclave.MECallSpec{Name: "ping", Async: false},
		enclave.MECallSpec{Name: "seal_result", Async: false},
	)
}

// Session is a protected application context (the paper's App-1 workflow,
// §III-D): a CPU mEnclave owned by the application, from which accelerator
// mEnclaves are created and driven over sRPC.
type Session struct {
	Platform *Platform
	Name     string

	owner *mos.Enclave // the CPU mEnclave (mE_A)
	EID   uint32
	Hash  attest.Measurement

	// App <-> CPU-enclave sealed channels (untrusted-memory path).
	tx *attest.Channel
	rx *attest.Channel

	manifests map[string]attest.Measurement // created enclaves, for attestation
}

// NewSession creates the application's CPU mEnclave and the sealed channel
// to it.
func (pl *Platform) NewSession(p *sim.Proc, name string) (*Session, error) {
	files := map[string][]byte{
		"session.edl": SessionEDL(),
		"session.so":  enclave.BuildCPUImage("cronus-session-runtime"),
	}
	man := enclave.NewManifest("cpu", "session.edl", "session.so", files, enclave.Resources{Memory: "64M"})
	dh, err := attest.NewDHKey([]byte("app/" + name))
	if err != nil {
		return nil, err
	}
	res, err := pl.D.CreateEnclave(p, name, man, files, dh.Pub)
	if err != nil {
		return nil, err
	}
	secret, err := dh.Shared(res.DHPub)
	if err != nil {
		return nil, err
	}
	srv := pl.D.Server(res.EID)
	if srv == nil {
		return nil, fmt.Errorf("core: no endpoint for session enclave")
	}
	return &Session{
		Platform:  pl,
		Name:      name,
		owner:     srv.Enclave(),
		EID:       res.EID,
		Hash:      res.Hash,
		tx:        attest.NewChannel(secret, "owner->enclave"),
		rx:        attest.NewChannel(secret, "enclave->owner"),
		manifests: map[string]attest.Measurement{name: res.Hash},
	}, nil
}

// Ping exercises the sealed untrusted-memory mECall path end to end.
func (s *Session) Ping(p *sim.Proc, payload []byte) ([]byte, error) {
	req := mos.SealRequest(s.tx, "ping", payload)
	reply, err := s.Platform.D.InvokeSealed(p, s.EID, req)
	if err != nil {
		return nil, err
	}
	return mos.OpenReply(s.rx, reply)
}

// Owner exposes the session's CPU mEnclave — the trusted context from which
// accelerator enclaves are created. Code holding this reference models the
// application logic *inside* the enclave.
func (s *Session) Owner() *mos.Enclave { return s.owner }

// EnclaveMeasurements returns the measurements of every enclave the session
// created, keyed by name — the closure the user pins during remote
// attestation (§IV-A).
func (s *Session) EnclaveMeasurements() map[string]attest.Measurement {
	out := make(map[string]attest.Measurement, len(s.manifests))
	for k, v := range s.manifests {
		out[k] = v
	}
	return out
}

// Attest runs remote attestation for this session: the client verifies the
// platform report covers the session's enclaves, the partitions' mOSes and
// the frozen device tree.
func (s *Session) Attest(p *sim.Proc, nonce uint64) error {
	dt := s.Platform.SPM.DTHash()
	mosHashes := make(map[string]attest.Measurement)
	for _, part := range s.Platform.SPM.Partitions() {
		mosHashes[part.Name] = part.MOSHash()
	}
	return s.Platform.RemoteAttest(p, nonce, attest.Expected{
		MOSHashes:     mosHashes,
		EnclaveHashes: s.EnclaveMeasurements(),
		DTHash:        &dt,
		Nonce:         nonce,
	})
}
