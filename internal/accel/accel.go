// Package accel defines the device-operation interfaces workloads are
// written against. The same Rodinia benchmark or DNN training step runs
// unmodified on CRONUS (sRPC-backed), on the monolithic-TrustZone and
// HIX-TrustZone baselines, and natively — mirroring how the paper evaluates
// one workload across four systems (§VI-A).
package accel

import (
	"cronus/internal/gpu"
	"cronus/internal/npu"
	"cronus/internal/sim"
)

// CUDA is the CUDA-driver-level operation surface.
type CUDA interface {
	// MemAlloc allocates device memory.
	MemAlloc(p *sim.Proc, n uint64) (uint64, error)
	// MemFree releases device memory.
	MemFree(p *sim.Proc, ptr uint64) error
	// HtoD copies host data to the device (may be asynchronous).
	HtoD(p *sim.Proc, dst uint64, data []byte) error
	// DtoH copies device data to the host (synchronous).
	DtoH(p *sim.Proc, src uint64, n int) ([]byte, error)
	// Launch enqueues a kernel (may be asynchronous).
	Launch(p *sim.Proc, kernel string, grid gpu.Dim, args ...uint64) error
	// Sync blocks until all enqueued work completed and surfaces any
	// asynchronous error.
	Sync(p *sim.Proc) error
	// Close releases the execution context.
	Close(p *sim.Proc) error
}

// NPU is the VTA-driver-level operation surface.
type NPU interface {
	MemAlloc(p *sim.Proc, n uint64) (uint64, error)
	HtoD(p *sim.Proc, dst uint64, data []byte) error
	DtoH(p *sim.Proc, src uint64, n int) ([]byte, error)
	// Run submits an instruction stream (may be asynchronous).
	Run(p *sim.Proc, insns []npu.Insn) error
	Sync(p *sim.Proc) error
	Close(p *sim.Proc) error
}
