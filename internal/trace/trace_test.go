package trace_test

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"cronus/internal/core"
	"cronus/internal/gpu"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/trace"
)

func TestCollectorDisabledByDefault(t *testing.T) {
	c := &trace.Collector{}
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		c.Instant(p, "x", "t", "e", nil)
		end := c.Span(p, "x", "t", "s")
		p.Sleep(10)
		end()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("disabled collector recorded %d events", c.Len())
	}
}

func TestSpanAndChromeOutput(t *testing.T) {
	c := &trace.Collector{}
	c.Enable()
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		end := c.Span(p, "gpu", "gpu0", "matmul")
		p.Sleep(1000)
		end()
		c.Instant(p, "spm", "gpu-part", "partition-failed", map[string]string{"reason": "panic"})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("events = %d", c.Len())
	}
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 thread_name metadata + 2 events.
	if len(parsed) != 4 {
		t.Fatalf("chrome events = %d", len(parsed))
	}
	if !strings.Contains(c.Summary(), "gpu=1") {
		t.Errorf("summary %q", c.Summary())
	}
}

func TestMaxEventsCap(t *testing.T) {
	c := &trace.Collector{}
	c.Enable()
	c.SetMaxEvents(3)
	for i := 0; i < 5; i++ {
		c.InstantAt(sim.Time(i), "x", "t", "e", nil)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3 (capped)", c.Len())
	}
	if c.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", c.Dropped())
	}
	if !strings.Contains(c.Summary(), "dropped") {
		t.Errorf("summary does not report drops: %q", c.Summary())
	}
	// Enable clears both the events and the drop count.
	c.Enable()
	if c.Len() != 0 || c.Dropped() != 0 {
		t.Fatal("Enable did not reset the collector")
	}
}

// Enable/Disable/Write must be safe to call around a running kernel — the
// hooks race against the toggler and the writer (checked under -race).
func TestConcurrentToggleAndWrite(t *testing.T) {
	c := &trace.Collector{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			c.Enable()
			_ = c.Len()
			_ = c.WriteChromeTrace(io.Discard)
			c.Disable()
		}
	}()
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			c.Instant(p, "a", "t", "e", nil)
			end := c.Span(p, "a", "t", "s")
			p.Sleep(1)
			end()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := c.WriteChromeTrace(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestEventsAccessor(t *testing.T) {
	c := &trace.Collector{}
	c.Enable()
	c.InstantAt(10, "spm", "part", "first", nil)
	c.SpanAt(20, 50, "spm", "part", "second", nil)
	evs := c.Events()
	if len(evs) != 2 || evs[0].Name != "first" || evs[1].Name != "second" {
		t.Fatalf("events = %+v", evs)
	}
	if evs[1].Start != 20 || evs[1].Dur != 30 {
		t.Fatalf("span event = %+v", evs[1])
	}
}

// End-to-end: a traced platform run captures GPU launches, sync waits and
// the failure/recovery instants.
func TestHooksCaptureArchitecturalEvents(t *testing.T) {
	trace.Default.Enable()
	defer trace.Default.Disable()
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "traced")
		if err != nil {
			return err
		}
		g, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add")})
		if err != nil {
			return err
		}
		a, _ := g.MemAlloc(p, 64)
		b, _ := g.MemAlloc(p, 64)
		cc, _ := g.MemAlloc(p, 64)
		if err := g.Launch(p, "vec_add", gpu.Dim{16, 1, 1}, a, b, cc); err != nil {
			return err
		}
		if err := g.Sync(p); err != nil {
			return err
		}
		pl.SPM.Fail(pl.GPUs[0].Part, spm.FailPanic)
		pl.SPM.AwaitReady(p, pl.GPUs[0].Part)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Default.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"vec_add", "sync-wait", "partition-failed", "partition-ready"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}
