package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cronus/internal/core"
	"cronus/internal/gpu"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/trace"
)

func TestCollectorDisabledByDefault(t *testing.T) {
	c := &trace.Collector{}
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		c.Instant(p, "x", "t", "e", nil)
		end := c.Span(p, "x", "t", "s")
		p.Sleep(10)
		end()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("disabled collector recorded %d events", c.Len())
	}
}

func TestSpanAndChromeOutput(t *testing.T) {
	c := &trace.Collector{}
	c.Enable()
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		end := c.Span(p, "gpu", "gpu0", "matmul")
		p.Sleep(1000)
		end()
		c.Instant(p, "spm", "gpu-part", "partition-failed", map[string]string{"reason": "panic"})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("events = %d", c.Len())
	}
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 thread_name metadata + 2 events.
	if len(parsed) != 4 {
		t.Fatalf("chrome events = %d", len(parsed))
	}
	if !strings.Contains(c.Summary(), "gpu=1") {
		t.Errorf("summary %q", c.Summary())
	}
}

// End-to-end: a traced platform run captures GPU launches, sync waits and
// the failure/recovery instants.
func TestHooksCaptureArchitecturalEvents(t *testing.T) {
	trace.Default.Enable()
	defer trace.Default.Disable()
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "traced")
		if err != nil {
			return err
		}
		g, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add")})
		if err != nil {
			return err
		}
		a, _ := g.MemAlloc(p, 64)
		b, _ := g.MemAlloc(p, 64)
		cc, _ := g.MemAlloc(p, 64)
		if err := g.Launch(p, "vec_add", gpu.Dim{16, 1, 1}, a, b, cc); err != nil {
			return err
		}
		if err := g.Sync(p); err != nil {
			return err
		}
		pl.SPM.Fail(pl.GPUs[0].Part, spm.FailPanic)
		pl.SPM.AwaitReady(p, pl.GPUs[0].Part)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Default.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"vec_add", "sync-wait", "partition-failed", "partition-ready"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}
