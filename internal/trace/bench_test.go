package trace_test

import (
	"testing"

	"cronus/internal/sim"
	"cronus/internal/trace"
)

// benchProc returns a spawned-but-never-run process: enough for the hooks,
// which only read its current time.
func benchProc() *sim.Proc {
	k := sim.NewKernel()
	return k.Spawn("bench", func(*sim.Proc) {})
}

func assertZeroAllocs(tb testing.TB, name string, fn func()) {
	tb.Helper()
	if n := testing.AllocsPerRun(100, fn); n != 0 {
		tb.Fatalf("%s allocated %.1f objects per op when disabled", name, n)
	}
}

// The disabled-path cost contract for trace hooks: one atomic load, one
// branch, zero allocations.

func BenchmarkDisabledInstant(b *testing.B) {
	c := &trace.Collector{}
	p := benchProc()
	assertZeroAllocs(b, "Instant", func() { c.Instant(p, "cat", "track", "name", nil) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Instant(p, "cat", "track", "name", nil)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	c := &trace.Collector{}
	p := benchProc()
	assertZeroAllocs(b, "Span", func() { c.Span(p, "cat", "track", "name")() })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Span(p, "cat", "track", "name")()
	}
}

func BenchmarkDisabledInstantAt(b *testing.B) {
	c := &trace.Collector{}
	assertZeroAllocs(b, "InstantAt", func() { c.InstantAt(42, "cat", "track", "name", nil) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.InstantAt(42, "cat", "track", "name", nil)
	}
}
