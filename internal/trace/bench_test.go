package trace_test

import (
	"testing"

	"cronus/internal/sim"
	"cronus/internal/trace"
)

// benchProc returns a spawned-but-never-run process: enough for the hooks,
// which only read its current time.
func benchProc() *sim.Proc {
	k := sim.NewKernel()
	return k.Spawn("bench", func(*sim.Proc) {})
}

func assertZeroAllocs(tb testing.TB, name string, fn func()) {
	tb.Helper()
	if n := testing.AllocsPerRun(100, fn); n != 0 {
		tb.Fatalf("%s allocated %.1f objects per op when disabled", name, n)
	}
}

// The disabled-path cost contract for trace hooks: one atomic load, one
// branch, zero allocations.

func BenchmarkDisabledInstant(b *testing.B) {
	c := &trace.Collector{}
	p := benchProc()
	assertZeroAllocs(b, "Instant", func() { c.Instant(p, "cat", "track", "name", nil) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Instant(p, "cat", "track", "name", nil)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	c := &trace.Collector{}
	p := benchProc()
	assertZeroAllocs(b, "Span", func() { c.Span(p, "cat", "track", "name")() })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Span(p, "cat", "track", "name")()
	}
}

// Causal linkage must not weaken the disabled-path contract: with a span
// context threaded through the process, the hooks still allocate nothing
// while the collector is off.
func BenchmarkDisabledSpanWithCtx(b *testing.B) {
	c := &trace.Collector{}
	p := benchProc()
	p.SetTraceCtx(0xdeadbeef, 42)
	assertZeroAllocs(b, "Span+ctx", func() { c.Span(p, "cat", "track", "name")() })
	assertZeroAllocs(b, "BeginSpan+ctx", func() { c.BeginSpan(p, "cat", "track", "name")() })
	assertZeroAllocs(b, "StartSpan+ctx", func() {
		c.StartSpan(p, "cat", "track", "name", trace.SpanCtx{Trace: 1, Span: 2})()
	})
	assertZeroAllocs(b, "SpanAtLinked", func() { c.SpanAtLinked(1, 2, "cat", "track", "name", 1, 2, 3) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Span(p, "cat", "track", "name")()
	}
}

func BenchmarkDisabledInstantAt(b *testing.B) {
	c := &trace.Collector{}
	assertZeroAllocs(b, "InstantAt", func() { c.InstantAt(42, "cat", "track", "name", nil) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.InstantAt(42, "cat", "track", "name", nil)
	}
}
