package trace

import "cronus/internal/sim"

// The sim kernel cannot import this package (trace depends on sim for its
// time types), so scheduler lifecycle events arrive through a hook installed
// at init. The name is composed only once the collector is known to be
// enabled, keeping the disabled path allocation-free.
func init() {
	sim.SetTraceHook(func(at sim.Time, kind, name string) {
		if !Default.enabled.Load() {
			return
		}
		Default.add(Event{Name: kind + " " + name, Cat: "sim", Track: "scheduler", Start: at})
	})
}
