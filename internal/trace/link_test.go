package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"cronus/internal/sim"
	"cronus/internal/trace"
)

// Span/Instant inherit the recording process's span context, so existing
// instrumentation joins the causal tree with no signature changes.
func TestSpanInheritsProcContext(t *testing.T) {
	c := &trace.Collector{}
	c.Enable()
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		p.SetTraceCtx(0xabc, 7)
		end := c.Span(p, "gpu", "gpu0", "launch")
		p.Sleep(10)
		end()
		c.Instant(p, "spm", "part", "beat", nil)
		p.SetTraceCtx(0, 0)
		end = c.Span(p, "gpu", "gpu0", "unlinked")
		p.Sleep(10)
		end()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	evs := c.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].TraceID != 0xabc || evs[0].Parent != 7 || evs[0].SpanID == 0 {
		t.Fatalf("linked span = %+v", evs[0])
	}
	if evs[1].TraceID != 0xabc || evs[1].Parent != 7 || evs[1].SpanID != 0 {
		t.Fatalf("instant = %+v", evs[1])
	}
	if evs[2].TraceID != 0 || evs[2].SpanID != 0 {
		t.Fatalf("unlinked span minted ids: %+v", evs[2])
	}
}

// BeginSpan pushes itself as the current context (nested hooks chain under
// it) and the close restores the previous context.
func TestBeginSpanNesting(t *testing.T) {
	c := &trace.Collector{}
	c.Enable()
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		p.SetTraceCtx(0x1, 100)
		outer := c.BeginSpan(p, "srpc", "s", "outer")
		inner := c.Span(p, "mos", "m", "inner")
		p.Sleep(5)
		inner()
		outer()
		if _, sid := p.TraceCtx(); sid != 100 {
			t.Errorf("context not restored: span=%d", sid)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	evs := c.Events() // inner closes first
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	inner, outer := evs[0], evs[1]
	if outer.Parent != 100 || outer.SpanID == 0 {
		t.Fatalf("outer = %+v", outer)
	}
	if inner.Parent != outer.SpanID || inner.TraceID != 0x1 {
		t.Fatalf("inner %+v does not chain under outer %d", inner, outer.SpanID)
	}
}

// StartSpan roots the context at an explicit SpanCtx — the replica-worker
// entry point — and restores on close.
func TestStartSpanExplicitRoot(t *testing.T) {
	c := &trace.Collector{}
	c.Enable()
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		end := c.StartSpan(p, "serve", "part0", "batch-exec", trace.SpanCtx{Trace: 0x42, Span: 9})
		if tid, _ := p.TraceCtx(); tid != 0x42 {
			t.Errorf("context not pushed: trace=%#x", tid)
		}
		p.Sleep(3)
		end()
		if tid, sid := p.TraceCtx(); tid != 0 || sid != 0 {
			t.Errorf("context not restored: %#x/%d", tid, sid)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	evs := c.Events()
	if len(evs) != 1 || evs[0].TraceID != 0x42 || evs[0].Parent != 9 {
		t.Fatalf("events = %+v", evs)
	}
}

// The flow map carries a span context across an sRPC ring: put by the
// pushing client, taken exactly once by the consuming executor.
func TestFlowPutTake(t *testing.T) {
	c := &trace.Collector{}
	c.Enable()
	c.PutFlow(3, 14, trace.SpanCtx{Trace: 0x7, Span: 2})
	if _, ok := c.TakeFlow(3, 15); ok {
		t.Fatal("wrong slot claimed a context")
	}
	ctx, ok := c.TakeFlow(3, 14)
	if !ok || ctx.Trace != 0x7 || ctx.Span != 2 {
		t.Fatalf("TakeFlow = %+v, %v", ctx, ok)
	}
	if _, ok := c.TakeFlow(3, 14); ok {
		t.Fatal("context claimed twice")
	}
	// Enable clears unclaimed contexts.
	c.PutFlow(1, 1, trace.SpanCtx{Trace: 0x9, Span: 1})
	c.Enable()
	if _, ok := c.TakeFlow(1, 1); ok {
		t.Fatal("Enable did not clear the flow map")
	}
}

// NextSpanID mints a deterministic sequence that resets on Enable.
func TestNextSpanIDResets(t *testing.T) {
	c := &trace.Collector{}
	c.Enable()
	if a, b := c.NextSpanID(), c.NextSpanID(); a != 1 || b != 2 {
		t.Fatalf("sequence = %d, %d", a, b)
	}
	c.Enable()
	if got := c.NextSpanID(); got != 1 {
		t.Fatalf("sequence did not reset: %d", got)
	}
}

// The tap observes every event — including those dropped at the storage cap,
// which is when a bounded flight recorder matters most.
func TestTapSeesDroppedEvents(t *testing.T) {
	c := &trace.Collector{}
	c.Enable()
	c.SetMaxEvents(2)
	var seen int
	c.SetTap(func(trace.Event) { seen++ })
	for i := 0; i < 5; i++ {
		c.InstantAt(sim.Time(i), "x", "t", "e", nil)
	}
	if c.Len() != 2 || c.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", c.Len(), c.Dropped())
	}
	if seen != 5 {
		t.Fatalf("tap saw %d of 5 events", seen)
	}
}

// Causal ids travel into the Chrome export as args, hex trace id included.
func TestChromeExportCarriesLinkage(t *testing.T) {
	c := &trace.Collector{}
	c.Enable()
	c.SpanAtLinked(10, 20, "serve", "req:tenant-0", "request resnet18", 0xbeef, 3, 0)
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"trace":"0xbeef"`, `"span":"3"`} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s:\n%s", want, out)
		}
	}
}
