// Package trace is an opt-in event tracer for the simulation: components
// record spans and instants in virtual time, and the collector writes the
// Chrome trace-event JSON format, so a CRONUS run can be inspected on a
// timeline (chrome://tracing, Perfetto).
//
// Tracing is disabled by default and costs one atomic load and a branch per
// hook when off — and allocates nothing. The collector is safe to record into
// from any goroutine and safe to Enable/Disable/Write around a running
// kernel; recorded events are bounded by a configurable cap (see
// SetMaxEvents) so long runs cannot grow without limit. Events dropped at the
// cap are counted both on the collector (Dropped) and in the metrics registry
// ("trace.events.dropped"), so a truncated trace is never silent.
//
// Causal linkage: every event can carry a TraceID (the request it belongs
// to), a SpanID and a Parent span. Span and Instant read the current span
// context off the recording process (sim.Proc.TraceCtx), so existing
// instrumentation joins the causal tree with no signature changes; BeginSpan
// additionally pushes the new span as the process's current context so nested
// spans chain correctly. Span ids are minted from a collector-local sequence,
// reset on Enable — because the sim kernel schedules deterministically, the
// minted ids (and therefore the whole export) are byte-identical across
// identical seeded runs. The flow map (PutFlow/TakeFlow) carries a span
// context across an sRPC ring from the pushing client proc to the consuming
// executor proc, modelling the trace-context field a real RPC header would
// carry without perturbing the simulated ring layout or its virtual-time
// costs.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"cronus/internal/metrics"
	"cronus/internal/sim"
)

// DefaultMaxEvents bounds a collector that was not given an explicit cap.
const DefaultMaxEvents = 1 << 20

// mDropped counts events discarded at the cap, surfacing silent trace
// truncation in every metrics snapshot.
var mDropped = metrics.Default.Counter("trace.events.dropped")

// Event is one recorded trace event.
type Event struct {
	Name  string
	Cat   string
	Track string // rendered as the "thread" lane
	Start sim.Time
	Dur   sim.Duration // 0 for instants
	Args  map[string]string

	// TraceID ties the event to one causal request tree (0: unlinked).
	TraceID uint64
	// SpanID identifies this span inside its trace (0 for instants and
	// unlinked spans).
	SpanID uint64
	// Parent is the SpanID of the enclosing span (0: root).
	Parent uint64
}

// SpanCtx is a position in a causal span tree: the trace it belongs to and
// the span that is current there.
type SpanCtx struct {
	// Trace is the request's TraceID.
	Trace uint64
	// Span is the current span's id.
	Span uint64
}

// flowKey addresses one record on one sRPC stream.
type flowKey struct{ stream, slot uint64 }

// Collector gathers events. The zero value is a disabled collector with the
// default event cap.
type Collector struct {
	enabled atomic.Bool
	spanSeq atomic.Uint64

	mu      sync.Mutex
	events  []Event
	max     int // 0: DefaultMaxEvents; negative: unlimited
	dropped uint64
	tap     func(Event)

	flowMu sync.Mutex
	flow   map[flowKey]SpanCtx
}

// Default is the process-wide collector the hooks record into.
var Default = &Collector{}

// noop is the span terminator returned while disabled; a shared value keeps
// the disabled path allocation-free.
var noop = func() {}

// Enable turns on collection (and clears previous events, the span-id
// sequence, and the cross-proc flow map).
func (c *Collector) Enable() {
	c.mu.Lock()
	c.events = nil
	c.dropped = 0
	c.mu.Unlock()
	c.flowMu.Lock()
	c.flow = nil
	c.flowMu.Unlock()
	c.spanSeq.Store(0)
	c.enabled.Store(true)
}

// Disable stops collection. Events recorded so far remain readable.
func (c *Collector) Disable() { c.enabled.Store(false) }

// Enabled reports whether events are being recorded.
func (c *Collector) Enabled() bool { return c.enabled.Load() }

// SetMaxEvents bounds the number of retained events: once reached, further
// events are counted as dropped instead of stored. n == 0 restores
// DefaultMaxEvents; n < 0 removes the bound.
func (c *Collector) SetMaxEvents(n int) {
	c.mu.Lock()
	c.max = n
	c.mu.Unlock()
}

// SetTap installs an observer called (under the collector lock) for every
// event recorded while enabled — the flight recorder's feed. The tap sees
// events even once the storage cap is hit and events are being dropped, so a
// bounded recorder keeps observing the most recent activity exactly when a
// long run overflows the collector. Pass nil to remove. The tap must not
// call back into the collector.
func (c *Collector) SetTap(fn func(Event)) {
	c.mu.Lock()
	c.tap = fn
	c.mu.Unlock()
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Dropped returns how many events were discarded because the cap was hit.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Events returns a copy of the recorded events, in recording order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// NextSpanID mints a fresh span id. Minting order follows the kernel's
// deterministic schedule, so ids are stable across identical runs. The
// sequence resets on Enable.
func (c *Collector) NextSpanID() uint64 { return c.spanSeq.Add(1) }

// add appends one event, honoring the cap. Callers check enabled first.
func (c *Collector) add(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tap != nil {
		c.tap(e)
	}
	limit := c.max
	if limit == 0 {
		limit = DefaultMaxEvents
	}
	if limit > 0 && len(c.events) >= limit {
		c.dropped++
		mDropped.Inc()
		return
	}
	c.events = append(c.events, e)
}

// Instant records a zero-duration event at the current virtual time. It
// inherits the recording process's span context, so instants land inside the
// span that was current when they fired.
func (c *Collector) Instant(p *sim.Proc, cat, track, name string, args map[string]string) {
	if !c.enabled.Load() {
		return
	}
	tid, parent := p.TraceCtx()
	c.add(Event{Name: name, Cat: cat, Track: track, Start: p.Now(), Args: args,
		TraceID: tid, Parent: parent})
}

// InstantAt records a zero-duration event at an explicit virtual time (for
// callers without a process context).
func (c *Collector) InstantAt(at sim.Time, cat, track, name string, args map[string]string) {
	if !c.enabled.Load() {
		return
	}
	c.add(Event{Name: name, Cat: cat, Track: track, Start: at, Args: args})
}

// Span starts a span and returns the closure that ends it:
//
//	defer trace.Default.Span(p, "srpc", "stream-1", "sync-wait")()
//
// The span links into the recording process's current span context (trace id
// and parent) but does not become the current context itself — use BeginSpan
// when nested hooks should chain under it.
func (c *Collector) Span(p *sim.Proc, cat, track, name string) func() {
	if !c.enabled.Load() {
		return noop
	}
	start := p.Now()
	tid, parent := p.TraceCtx()
	var sid uint64
	if tid != 0 {
		sid = c.NextSpanID()
	}
	return func() {
		if !c.enabled.Load() {
			return
		}
		c.add(Event{
			Name: name, Cat: cat, Track: track,
			Start: start, Dur: sim.Duration(p.Now() - start),
			TraceID: tid, SpanID: sid, Parent: parent,
		})
	}
}

// BeginSpan starts a span that becomes the process's current span context:
// hooks that fire while it is open link under it. The returned closure
// records the span and restores the previous context. Use StartSpan to root
// the context at an explicit trace instead of the inherited one.
func (c *Collector) BeginSpan(p *sim.Proc, cat, track, name string) func() {
	if !c.enabled.Load() {
		return noop
	}
	tid, parent := p.TraceCtx()
	return c.startAt(p, cat, track, name, tid, parent)
}

// StartSpan begins a span rooted at an explicit trace and parent span,
// making it the process's current span context until the returned closure
// runs (which records the span and restores the previous context). It is the
// entry point for work executing on behalf of a request whose context is not
// already on the process — e.g. a replica worker picking up a placed batch.
func (c *Collector) StartSpan(p *sim.Proc, cat, track, name string, ctx SpanCtx) func() {
	if !c.enabled.Load() {
		return noop
	}
	return c.startAt(p, cat, track, name, ctx.Trace, ctx.Span)
}

// startAt is the shared body of BeginSpan/StartSpan: mint, push, and return
// the restoring closure. Callers hold the enabled check.
func (c *Collector) startAt(p *sim.Proc, cat, track, name string, tid, parent uint64) func() {
	start := p.Now()
	var sid uint64
	if tid != 0 {
		sid = c.NextSpanID()
	}
	prevTID, prevSID := p.TraceCtx()
	p.SetTraceCtx(tid, sid)
	return func() {
		p.SetTraceCtx(prevTID, prevSID)
		if !c.enabled.Load() {
			return
		}
		c.add(Event{
			Name: name, Cat: cat, Track: track,
			Start: start, Dur: sim.Duration(p.Now() - start),
			TraceID: tid, SpanID: sid, Parent: parent,
		})
	}
}

// SpanAt records a completed span between two explicit virtual times (for
// phases whose start predates the recording process, e.g. failover).
func (c *Collector) SpanAt(start, end sim.Time, cat, track, name string, args map[string]string) {
	if !c.enabled.Load() {
		return
	}
	c.add(Event{Name: name, Cat: cat, Track: track, Start: start, Dur: sim.Duration(end - start), Args: args})
}

// SpanAtLinked records a completed span between two explicit virtual times
// with explicit causal linkage — the emission path for request stage
// segments, whose boundaries were marked earlier than they are recorded.
func (c *Collector) SpanAtLinked(start, end sim.Time, cat, track, name string, traceID, spanID, parent uint64) {
	if !c.enabled.Load() {
		return
	}
	c.add(Event{Name: name, Cat: cat, Track: track,
		Start: start, Dur: sim.Duration(end - start),
		TraceID: traceID, SpanID: spanID, Parent: parent})
}

// PutFlow stashes a span context for the record at slot on an sRPC stream,
// to be claimed by the executor that consumes the record (TakeFlow). It
// models the trace-context field of a real RPC header out-of-band, so the
// simulated ring layout and its virtual-time costs are unchanged. Callers
// check Enabled first; contexts left unclaimed are cleared on Enable.
func (c *Collector) PutFlow(stream, slot uint64, ctx SpanCtx) {
	c.flowMu.Lock()
	if c.flow == nil {
		c.flow = make(map[flowKey]SpanCtx)
	}
	c.flow[flowKey{stream, slot}] = ctx
	c.flowMu.Unlock()
}

// TakeFlow claims (and removes) the span context stashed for the record at
// slot on an sRPC stream, reporting whether one was present.
func (c *Collector) TakeFlow(stream, slot uint64) (SpanCtx, bool) {
	c.flowMu.Lock()
	defer c.flowMu.Unlock()
	ctx, ok := c.flow[flowKey{stream, slot}]
	if ok {
		delete(c.flow, flowKey{stream, slot})
	}
	return ctx, ok
}

// chromeEvent is the trace-event JSON schema.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeArgs renders an event's args plus its causal linkage (trace/span/
// parent ids as hex strings) for the JSON export. Map keys marshal sorted,
// so the output stays deterministic.
func chromeArgs(e Event) map[string]string {
	if e.TraceID == 0 {
		return e.Args
	}
	out := make(map[string]string, len(e.Args)+3)
	for k, v := range e.Args {
		out[k] = v
	}
	out["trace"] = "0x" + strconv.FormatUint(e.TraceID, 16)
	if e.SpanID != 0 {
		out["span"] = strconv.FormatUint(e.SpanID, 10)
	}
	if e.Parent != 0 {
		out["parent"] = strconv.FormatUint(e.Parent, 10)
	}
	return out
}

// WriteChromeTrace emits the recorded events as a Chrome trace JSON array,
// with one tid lane per track. The format is the trace-event JSON Perfetto
// ingests directly; causally linked events carry their trace/span/parent ids
// in args.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	events := c.Events()
	tracks := make(map[string]int)
	var names []string
	for _, e := range events {
		if _, ok := tracks[e.Track]; !ok {
			tracks[e.Track] = 0
			names = append(names, e.Track)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		tracks[n] = i + 1
	}
	out := make([]chromeEvent, 0, len(events)+len(names))
	for _, n := range names {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tracks[n],
			Args: map[string]string{"name": n},
		})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, PID: 1, TID: tracks[e.Track],
			TS: float64(e.Start) / 1e3, Args: chromeArgs(e),
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / 1e3
		} else {
			ce.Ph = "i"
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Summary renders a terse text digest (events per category).
func (c *Collector) Summary() string {
	events := c.Events()
	counts := make(map[string]int)
	for _, e := range events {
		counts[e.Cat]++
	}
	cats := make([]string, 0, len(counts))
	for k := range counts {
		cats = append(cats, k)
	}
	sort.Strings(cats)
	s := fmt.Sprintf("%d trace events:", len(events))
	for _, k := range cats {
		s += fmt.Sprintf(" %s=%d", k, counts[k])
	}
	if d := c.Dropped(); d > 0 {
		s += fmt.Sprintf(" (%d dropped at cap)", d)
	}
	return s
}
