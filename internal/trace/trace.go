// Package trace is an opt-in event tracer for the simulation: components
// record spans and instants in virtual time, and the collector writes the
// Chrome trace-event JSON format, so a CRONUS run can be inspected on a
// timeline (chrome://tracing, Perfetto).
//
// Tracing is disabled by default and costs one branch per hook when off.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"cronus/internal/sim"
)

// Event is one recorded trace event.
type Event struct {
	Name  string
	Cat   string
	Track string // rendered as the "thread" lane
	Start sim.Time
	Dur   sim.Duration // 0 for instants
	Args  map[string]string
}

// Collector gathers events. The zero value is a disabled collector.
type Collector struct {
	enabled bool
	events  []Event
}

// Default is the process-wide collector the hooks record into.
var Default = &Collector{}

// Enable turns on collection (and clears previous events).
func (c *Collector) Enable() {
	c.enabled = true
	c.events = nil
}

// Disable stops collection.
func (c *Collector) Disable() { c.enabled = false }

// Enabled reports whether events are being recorded.
func (c *Collector) Enabled() bool { return c.enabled }

// Len returns the number of recorded events.
func (c *Collector) Len() int { return len(c.events) }

// Instant records a zero-duration event at the current virtual time.
func (c *Collector) Instant(p *sim.Proc, cat, track, name string, args map[string]string) {
	if !c.enabled {
		return
	}
	c.events = append(c.events, Event{Name: name, Cat: cat, Track: track, Start: p.Now(), Args: args})
}

// InstantAt records a zero-duration event at an explicit virtual time (for
// callers without a process context).
func (c *Collector) InstantAt(at sim.Time, cat, track, name string, args map[string]string) {
	if !c.enabled {
		return
	}
	c.events = append(c.events, Event{Name: name, Cat: cat, Track: track, Start: at, Args: args})
}

// Span starts a span and returns the closure that ends it:
//
//	defer trace.Default.Span(p, "srpc", "stream-1", "sync-wait")()
func (c *Collector) Span(p *sim.Proc, cat, track, name string) func() {
	if !c.enabled {
		return func() {}
	}
	start := p.Now()
	return func() {
		c.events = append(c.events, Event{
			Name: name, Cat: cat, Track: track,
			Start: start, Dur: sim.Duration(p.Now() - start),
		})
	}
}

// chromeEvent is the trace-event JSON schema.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace emits the recorded events as a Chrome trace JSON array,
// with one tid lane per track.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	tracks := make(map[string]int)
	var names []string
	for _, e := range c.events {
		if _, ok := tracks[e.Track]; !ok {
			tracks[e.Track] = 0
			names = append(names, e.Track)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		tracks[n] = i + 1
	}
	out := make([]chromeEvent, 0, len(c.events)+len(names))
	for _, n := range names {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tracks[n],
			Args: map[string]string{"name": n},
		})
	}
	for _, e := range c.events {
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, PID: 1, TID: tracks[e.Track],
			TS: float64(e.Start) / 1e3, Args: e.Args,
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / 1e3
		} else {
			ce.Ph = "i"
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Summary renders a terse text digest (events per category).
func (c *Collector) Summary() string {
	counts := make(map[string]int)
	for _, e := range c.events {
		counts[e.Cat]++
	}
	cats := make([]string, 0, len(counts))
	for k := range counts {
		cats = append(cats, k)
	}
	sort.Strings(cats)
	s := fmt.Sprintf("%d trace events:", len(c.events))
	for _, k := range cats {
		s += fmt.Sprintf(" %s=%d", k, counts[k])
	}
	return s
}
