// Package trace is an opt-in event tracer for the simulation: components
// record spans and instants in virtual time, and the collector writes the
// Chrome trace-event JSON format, so a CRONUS run can be inspected on a
// timeline (chrome://tracing, Perfetto).
//
// Tracing is disabled by default and costs one atomic load and a branch per
// hook when off — and allocates nothing. The collector is safe to record into
// from any goroutine and safe to Enable/Disable/Write around a running
// kernel; recorded events are bounded by a configurable cap (see
// SetMaxEvents) so long runs cannot grow without limit.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"cronus/internal/sim"
)

// DefaultMaxEvents bounds a collector that was not given an explicit cap.
const DefaultMaxEvents = 1 << 20

// Event is one recorded trace event.
type Event struct {
	Name  string
	Cat   string
	Track string // rendered as the "thread" lane
	Start sim.Time
	Dur   sim.Duration // 0 for instants
	Args  map[string]string
}

// Collector gathers events. The zero value is a disabled collector with the
// default event cap.
type Collector struct {
	enabled atomic.Bool

	mu      sync.Mutex
	events  []Event
	max     int // 0: DefaultMaxEvents; negative: unlimited
	dropped uint64
}

// Default is the process-wide collector the hooks record into.
var Default = &Collector{}

// noop is the span terminator returned while disabled; a shared value keeps
// the disabled path allocation-free.
var noop = func() {}

// Enable turns on collection (and clears previous events).
func (c *Collector) Enable() {
	c.mu.Lock()
	c.events = nil
	c.dropped = 0
	c.mu.Unlock()
	c.enabled.Store(true)
}

// Disable stops collection. Events recorded so far remain readable.
func (c *Collector) Disable() { c.enabled.Store(false) }

// Enabled reports whether events are being recorded.
func (c *Collector) Enabled() bool { return c.enabled.Load() }

// SetMaxEvents bounds the number of retained events: once reached, further
// events are counted as dropped instead of stored. n == 0 restores
// DefaultMaxEvents; n < 0 removes the bound.
func (c *Collector) SetMaxEvents(n int) {
	c.mu.Lock()
	c.max = n
	c.mu.Unlock()
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Dropped returns how many events were discarded because the cap was hit.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Events returns a copy of the recorded events, in recording order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// add appends one event, honoring the cap. Callers check enabled first.
func (c *Collector) add(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	limit := c.max
	if limit == 0 {
		limit = DefaultMaxEvents
	}
	if limit > 0 && len(c.events) >= limit {
		c.dropped++
		return
	}
	c.events = append(c.events, e)
}

// Instant records a zero-duration event at the current virtual time.
func (c *Collector) Instant(p *sim.Proc, cat, track, name string, args map[string]string) {
	if !c.enabled.Load() {
		return
	}
	c.add(Event{Name: name, Cat: cat, Track: track, Start: p.Now(), Args: args})
}

// InstantAt records a zero-duration event at an explicit virtual time (for
// callers without a process context).
func (c *Collector) InstantAt(at sim.Time, cat, track, name string, args map[string]string) {
	if !c.enabled.Load() {
		return
	}
	c.add(Event{Name: name, Cat: cat, Track: track, Start: at, Args: args})
}

// Span starts a span and returns the closure that ends it:
//
//	defer trace.Default.Span(p, "srpc", "stream-1", "sync-wait")()
func (c *Collector) Span(p *sim.Proc, cat, track, name string) func() {
	if !c.enabled.Load() {
		return noop
	}
	start := p.Now()
	return func() {
		if !c.enabled.Load() {
			return
		}
		c.add(Event{
			Name: name, Cat: cat, Track: track,
			Start: start, Dur: sim.Duration(p.Now() - start),
		})
	}
}

// SpanAt records a completed span between two explicit virtual times (for
// phases whose start predates the recording process, e.g. failover).
func (c *Collector) SpanAt(start, end sim.Time, cat, track, name string, args map[string]string) {
	if !c.enabled.Load() {
		return
	}
	c.add(Event{Name: name, Cat: cat, Track: track, Start: start, Dur: sim.Duration(end - start), Args: args})
}

// chromeEvent is the trace-event JSON schema.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace emits the recorded events as a Chrome trace JSON array,
// with one tid lane per track.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	events := c.Events()
	tracks := make(map[string]int)
	var names []string
	for _, e := range events {
		if _, ok := tracks[e.Track]; !ok {
			tracks[e.Track] = 0
			names = append(names, e.Track)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		tracks[n] = i + 1
	}
	out := make([]chromeEvent, 0, len(events)+len(names))
	for _, n := range names {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tracks[n],
			Args: map[string]string{"name": n},
		})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, PID: 1, TID: tracks[e.Track],
			TS: float64(e.Start) / 1e3, Args: e.Args,
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / 1e3
		} else {
			ce.Ph = "i"
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Summary renders a terse text digest (events per category).
func (c *Collector) Summary() string {
	events := c.Events()
	counts := make(map[string]int)
	for _, e := range events {
		counts[e.Cat]++
	}
	cats := make([]string, 0, len(counts))
	for k := range counts {
		cats = append(cats, k)
	}
	sort.Strings(cats)
	s := fmt.Sprintf("%d trace events:", len(events))
	for _, k := range cats {
		s += fmt.Sprintf(" %s=%d", k, counts[k])
	}
	if d := c.Dropped(); d > 0 {
		s += fmt.Sprintf(" (%d dropped at cap)", d)
	}
	return s
}
