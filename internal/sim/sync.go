package sim

// This file provides the synchronization primitives used by simulated code:
// mailboxes (CSP-style queues), counting resources with FIFO admission, and
// one-shot signals. All blocking methods take the calling Proc explicitly —
// simulated code always knows which simulated thread it is running on.

// Mailbox is an unbounded FIFO queue of values passed between processes.
// Send never blocks; Recv blocks until a value is available.
type Mailbox[T any] struct {
	k       *Kernel
	name    string
	items   []T
	waiters []*Proc
	closed  bool
}

// NewMailbox creates an empty mailbox.
func NewMailbox[T any](k *Kernel, name string) *Mailbox[T] {
	return &Mailbox[T]{k: k, name: name}
}

// Len reports the number of queued values.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Send enqueues v and wakes one waiting receiver. It may be called from any
// process, or from setup code before Run.
func (m *Mailbox[T]) Send(v T) {
	m.items = append(m.items, v)
	m.wakeOne()
}

func (m *Mailbox[T]) wakeOne() {
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		if w.state == procParked {
			m.k.wake(w)
			return
		}
	}
}

// Close marks the mailbox closed and wakes all waiters; further Recv calls
// drain remaining items and then report ok=false.
func (m *Mailbox[T]) Close() {
	m.closed = true
	for _, w := range m.waiters {
		if w.state == procParked {
			m.k.wake(w)
		}
	}
	m.waiters = nil
}

// Recv dequeues the next value, blocking p until one arrives. ok is false if
// the mailbox was closed and drained.
func (m *Mailbox[T]) Recv(p *Proc) (v T, ok bool) {
	for {
		if len(m.items) > 0 {
			v = m.items[0]
			var zero T
			m.items[0] = zero
			m.items = m.items[1:]
			return v, true
		}
		if m.closed {
			return v, false
		}
		m.waiters = append(m.waiters, p)
		p.park(func() { m.drop(p) })
	}
}

// TryRecv dequeues a value without blocking.
func (m *Mailbox[T]) TryRecv() (v T, ok bool) {
	if len(m.items) == 0 {
		return v, false
	}
	v = m.items[0]
	var zero T
	m.items[0] = zero
	m.items = m.items[1:]
	return v, true
}

func (m *Mailbox[T]) drop(p *Proc) {
	for i, w := range m.waiters {
		if w == p {
			m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
			return
		}
	}
}

// Resource is a counting resource (e.g., DMA engines, copy queues) with FIFO
// admission: requests are granted strictly in arrival order.
type Resource struct {
	k        *Kernel
	name     string
	capacity int
	inUse    int
	waiters  []resWait
}

type resWait struct {
	p *Proc
	n int
}

// NewResource creates a resource with the given capacity (units).
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{k: k, name: name, capacity: capacity}
}

// Capacity returns the configured number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Acquire blocks p until n units are available and takes them. n is clamped
// to the capacity so oversized requests degrade instead of deadlocking.
func (r *Resource) Acquire(p *Proc, n int) {
	if n < 1 {
		n = 1
	}
	if n > r.capacity {
		n = r.capacity
	}
	// FIFO: if anyone is ahead of us, queue even if units are free.
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	r.waiters = append(r.waiters, resWait{p: p, n: n})
	for {
		p.park(func() { r.drop(p) })
		// Woken: either our grant happened (inUse already bumped by
		// Release on our behalf) — signalled by us no longer queued —
		// or a spurious wake. Check by scanning the queue.
		if !r.queued(p) {
			return
		}
	}
}

func (r *Resource) queued(p *Proc) bool {
	for _, w := range r.waiters {
		if w.p == p {
			return true
		}
	}
	return false
}

func (r *Resource) drop(p *Proc) {
	for i, w := range r.waiters {
		if w.p == p {
			r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
			r.grant()
			return
		}
	}
}

// Release returns n units and grants queued waiters in FIFO order.
func (r *Resource) Release(n int) {
	if n < 1 {
		n = 1
	}
	if n > r.capacity {
		n = r.capacity
	}
	r.inUse -= n
	if r.inUse < 0 {
		r.inUse = 0
	}
	r.grant()
}

func (r *Resource) grant() {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if w.p.state == procDead {
			r.waiters = r.waiters[1:]
			continue
		}
		if r.inUse+w.n > r.capacity {
			return
		}
		r.inUse += w.n
		r.waiters = r.waiters[1:]
		r.k.wake(w.p)
	}
}

// Use acquires n units, sleeps for d, and releases — the common pattern for
// occupying an engine for a fixed service time.
func (r *Resource) Use(p *Proc, n int, d Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// Signal is a one-shot broadcast event: Wait blocks until Fire is called;
// once fired, Wait returns immediately forever after.
type Signal struct {
	k       *Kernel
	fired   bool
	waiters []*Proc
}

// NewSignal creates an unfired signal.
func NewSignal(k *Kernel) *Signal { return &Signal{k: k} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all current and future waiters. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		if w.state == procParked {
			s.k.wake(w)
		}
	}
	s.waiters = nil
}

// Wait blocks p until the signal fires.
func (s *Signal) Wait(p *Proc) {
	for !s.fired {
		s.waiters = append(s.waiters, p)
		p.park(func() { s.drop(p) })
	}
}

func (s *Signal) drop(p *Proc) {
	for i, w := range s.waiters {
		if w == p {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// WaitGroup counts outstanding simulated tasks.
type WaitGroup struct {
	k       *Kernel
	n       int
	waiters []*Proc
}

// NewWaitGroup creates a wait group with zero outstanding tasks.
func NewWaitGroup(k *Kernel) *WaitGroup { return &WaitGroup{k: k} }

// Add adjusts the task count by delta.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		for _, p := range w.waiters {
			if p.state == procParked {
				w.k.wake(p)
			}
		}
		w.waiters = nil
	}
}

// Done decrements the task count.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks p until the count reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.n > 0 {
		w.waiters = append(w.waiters, p)
		p.park(func() { w.drop(p) })
	}
}

func (w *WaitGroup) drop(p *Proc) {
	for i, q := range w.waiters {
		if q == p {
			w.waiters = append(w.waiters[:i], w.waiters[i+1:]...)
			return
		}
	}
}
