package sim

import "fmt"

// This file implements the sharded execution mode of the kernel (DESIGN.md
// §13). The model:
//
//   - EnableSharding(n, lookahead) partitions the kernel into n event
//     domains ("shards"); SpawnOn places processes. Execution starts
//     sequential: a deterministic merge of the per-shard queues that is
//     byte-identical to the single-queue kernel regardless of placement
//     (sequential events carry a global schedule sequence, so the merge
//     behaves as one queue).
//   - Parallelize switches to conservative (YAWNS-style) windowed
//     execution: every window the coordinator computes the global minimum
//     pending instant W, sets the horizon H = W + lookahead, and lets each
//     shard with events below H dispatch them concurrently on its own
//     goroutine. Cross-shard interaction is restricted to Ports whose hop
//     latency is >= the lookahead, so a send executed inside a window
//     (at s in [W, H)) arrives at s+hop >= W+lookahead = H — never inside
//     the window that produced it. Sends buffer in a per-shard outbox and
//     are folded into the target queues at the barrier.
//   - Determinism: in the parallel phase every event is keyed by
//     (instant, band, sender logical id, per-sender sequence) — a function
//     of the simulated program only, so dispatch order (and therefore every
//     virtual-time output) is byte-identical for any shard count or
//     placement, and under the race detector.
//   - Sequentialize permanently reverts to the sequential merge. Rare
//     cross-shard control paths (partition failure, reconnect, operator
//     actions) call it first, so the whole legacy machinery (SPM recovery,
//     kills, mailbox wakes across shards) stays valid without internal
//     changes.
//
// The unsharded kernel is the degenerate single-shard case and never pays
// any of this machinery beyond an extra branch per scheduled event.

// EnableSharding splits the kernel into n event domains with the given
// conservative lookahead (the minimum cross-shard Port hop latency). It must
// be called before Parallelize, in sequential mode; existing processes stay
// on shard 0. n is clamped to at least 1.
func (k *Kernel) EnableSharding(n int, lookahead Duration) {
	if k.parallel || k.everPar {
		panic("sim: EnableSharding after Parallelize")
	}
	if lookahead <= 0 {
		panic("sim: EnableSharding lookahead must be positive")
	}
	if n < 1 {
		n = 1
	}
	k.sharded = true
	k.eps = lookahead
	for len(k.shards) < n {
		k.shards = append(k.shards, newShard(k, len(k.shards)))
	}
}

// NumShards returns the number of event domains (1 for an unsharded kernel).
func (k *Kernel) NumShards() int { return len(k.shards) }

// Sharded reports whether EnableSharding was called. Layers that place
// processes (executor spawning, the serving plane) branch on this to pick
// SpawnOn with explicit logical ids over plain Spawn.
func (k *Kernel) Sharded() bool { return k.sharded }

// Lookahead returns the conservative lookahead configured by EnableSharding
// (zero for an unsharded kernel).
func (k *Kernel) Lookahead() Duration { return k.eps }

// SpawnOn creates a process on the given shard with the given logical id,
// starting at the current time. Logical ids key event order in the parallel
// phase: they must be non-zero and unique among processes alive at
// Parallelize (validated there). SpawnOn is sequential-mode only — processes
// spawned during the parallel phase must come from Proc.Spawn so their ids
// derive from the parent.
func (k *Kernel) SpawnOn(shard int, lid uint64, name string, fn func(p *Proc)) *Proc {
	if k.parallel {
		panic("sim: SpawnOn during the parallel phase (use Proc.Spawn)")
	}
	if shard < 0 || shard >= len(k.shards) {
		panic(fmt.Sprintf("sim: SpawnOn shard %d out of range [0,%d)", shard, len(k.shards)))
	}
	k.nextID++
	return k.spawn(k.shards[shard], k.nowSeq, name, fn, lid, k.nextID)
}

// Spawn creates a child process on the parent's shard, starting at the
// parent's current time. It is the only way to create processes during the
// parallel phase: the child's logical id and stable id derive from the
// parent's (parent lid + child ordinal << 32), so they are unique and
// independent of shard placement.
func (p *Proc) Spawn(name string, fn func(q *Proc)) *Proc {
	k := p.k
	if !k.parallel {
		k.nextID++
		return k.spawn(p.sh, k.nowSeq, name, fn, 0, k.nextID)
	}
	p.childCtr++
	lid := p.lid + p.childCtr<<32
	return k.spawn(p.sh, p.sh.now, name, fn, lid, int(lid|1<<62))
}

// SetLID assigns the process's logical id (see SpawnOn). It must be set
// before Parallelize for every process that lives into the parallel phase.
func (p *Proc) SetLID(lid uint64) {
	if p.k.parallel {
		panic("sim: SetLID during the parallel phase")
	}
	p.lid = lid
}

// LID returns the process's logical id (zero if never assigned).
func (p *Proc) LID() uint64 { return p.lid }

// key returns the mode-appropriate event key charged to this process.
func (p *Proc) key() (a, b uint64) {
	if p.k.parallel {
		p.evseq++
		return p.lid, p.evseq
	}
	p.k.gseq++
	return 0, p.k.gseq
}

// CallAt schedules fn to run in kernel context on p's shard at time t
// (clamped to p's current time). The callback runs inline on the dispatching
// goroutine with no process handshake — it must not block (no Sleep, Recv,
// Acquire); it may wake processes, send on ports and chain further CallAt
// calls through the captured p. This is the cheap-timer primitive: one heap
// operation per occurrence instead of a parked process per timer.
func (p *Proc) CallAt(t Time, fn func()) {
	if t < p.sh.now {
		t = p.sh.now
	}
	a, b := p.key()
	p.sh.eq.pushEvent(event{t: t, band: 1, a: a, b: b, fn: fn})
}

// Parallelize requests the switch to windowed parallel execution at the next
// dispatch boundary. EnableSharding must have been called; every live
// process must carry a unique logical id by then. Call it once, after the
// sequential boot phase has placed and connected everything.
func (k *Kernel) Parallelize() {
	if !k.sharded {
		panic("sim: Parallelize without EnableSharding")
	}
	if k.parallel || k.everPar || k.pendPar {
		panic("sim: Parallelize called twice")
	}
	if k.seqReq.Load() {
		panic("sim: Parallelize after Sequentialize")
	}
	k.pendPar = true
}

// Sequentialize permanently reverts the kernel to the sequential merge, then
// returns. After it returns, cross-shard wakes, kills and shared-state
// mutation are legal again (the whole simulation is driven by one goroutine
// in a deterministic global order). It is the safety valve for rare
// cross-shard control paths — failure handling, reconnects, operator
// actions. No-op before Parallelize or on an unsharded kernel, so callers
// need no mode check of their own.
func (p *Proc) Sequentialize() {
	k := p.k
	if !k.everPar {
		return
	}
	if !k.parallel {
		return // already back to sequential
	}
	k.seqReq.Store(true)
	// Block once: our shard's window stops before its next dispatch, the
	// coordinator completes the barrier and switches modes, and this
	// process resumes under the sequential merge.
	p.Sleep(0)
}

// beginParallel validates logical ids and flips the mode (coordinator only).
func (k *Kernel) beginParallel() {
	seen := make(map[uint64]string)
	for _, sh := range k.shards {
		for p := range sh.procs {
			if p.state == procDead {
				continue
			}
			if p.lid == 0 {
				panic(fmt.Sprintf("sim: Parallelize: live process %q has no logical id (SetLID or SpawnOn)", p.name))
			}
			if other, dup := seen[p.lid]; dup {
				panic(fmt.Sprintf("sim: Parallelize: processes %q and %q share logical id %d", other, p.name, p.lid))
			}
			seen[p.lid] = p.name
		}
	}
	// Shard clocks only advance when they dispatch; align stragglers to the
	// global clock so every shard enters the first window at the same
	// instant.
	for _, sh := range k.shards {
		if k.nowSeq > sh.now {
			sh.now = k.nowSeq
		}
	}
	k.parallel = true
	k.everPar = true
}

// endParallel folds pending cross-shard sends back into the queues and
// reverts to sequential mode (coordinator only).
func (k *Kernel) endParallel() {
	k.drainOutboxes()
	k.parallel = false
	for _, sh := range k.shards {
		if sh.now > k.nowSeq {
			k.nowSeq = sh.now
		}
	}
}

// runParallel is the window coordinator. It returns finished=true when the
// run is over (error, stop, deadline or drained queue) and finished=false
// when Sequentialize switched the mode and the sequential loop should take
// over.
func (k *Kernel) runParallel(deadline Time) (err error, finished bool) {
	k.startDispatchers()
	for {
		if err := k.getErr(); err != nil {
			return err, true
		}
		if k.stopped.Load() {
			return nil, true
		}
		if k.seqReq.Load() {
			k.endParallel()
			return nil, false
		}
		w, any := k.minPending()
		if !any {
			if k.live.Load() > 0 {
				return k.deadlock(), true
			}
			return nil, true
		}
		if deadline >= 0 && w > deadline {
			k.nowSeq = deadline
			return nil, true
		}
		h := w + Time(k.eps)
		if deadline >= 0 && h > deadline+1 {
			h = deadline + 1
		}
		var active []*shard
		for _, sh := range k.shards {
			if sh.eq.Len() > 0 && sh.eq.peek().t < h {
				active = append(active, sh)
			}
		}
		if len(active) == 1 {
			// A window with one busy shard runs inline on the coordinator:
			// no handoff, no barrier cost — the common case when load
			// concentrates.
			active[0].runWindow(h)
		} else {
			for _, sh := range active {
				sh.work <- h
			}
			for _, sh := range active {
				<-sh.done
			}
		}
		k.drainOutboxes()
		if w > k.nowSeq {
			k.nowSeq = w
		}
	}
}

// minPending returns the earliest pending event instant across shards.
func (k *Kernel) minPending() (Time, bool) {
	var t Time
	ok := false
	for _, sh := range k.shards {
		if sh.eq.Len() == 0 {
			continue
		}
		if ht := sh.eq.peek().t; !ok || ht < t {
			t, ok = ht, true
		}
	}
	return t, ok
}

// runWindow dispatches this shard's events strictly below horizon h. It
// stops early on Stop, Sequentialize or a raised error — always safe under
// conservative synchronization (running less before a barrier never breaks
// the lookahead invariant).
func (sh *shard) runWindow(h Time) {
	k := sh.k
	for {
		if k.stopped.Load() || k.seqReq.Load() || k.errSet.Load() {
			return
		}
		if sh.eq.Len() == 0 || sh.eq.peek().t >= h {
			return
		}
		sh.dispatchPar(sh.eq.popEvent())
	}
}

// drainOutboxes folds buffered cross-shard sends into the target shard
// queues (coordinator only, at a barrier). Heap keys already carry the
// canonical (arrival, sender lid, sender seq) order, so no sort is needed.
func (k *Kernel) drainOutboxes() {
	for _, sh := range k.shards {
		for _, m := range sh.outbox {
			m.to.eq.pushEvent(event{t: m.at, band: 0, a: m.a, b: m.b, fn: m.fn})
		}
		sh.outbox = sh.outbox[:0]
	}
}

// startDispatchers launches the per-shard window goroutines (idempotent).
func (k *Kernel) startDispatchers() {
	if k.started {
		return
	}
	k.started = true
	for _, sh := range k.shards {
		sh.work = make(chan Time)
		sh.done = make(chan struct{})
		go func(sh *shard) {
			for h := range sh.work {
				sh.runWindow(h)
				sh.done <- struct{}{}
			}
		}(sh)
	}
}

// stopDispatchers terminates the window goroutines (Shutdown).
func (k *Kernel) stopDispatchers() {
	if !k.started {
		return
	}
	k.started = false
	for _, sh := range k.shards {
		close(sh.work)
	}
}

// Port is the cross-shard communication primitive of the parallel phase: a
// single-consumer message queue anchored on a receiver shard, with an
// explicit hop latency modelling the interconnect (PCIe-style) a message
// crosses between domains. Sends from any shard are legal; receives must
// come from the port's shard. Cross-shard sends require hop >= the kernel
// lookahead — that inequality is exactly what lets shards simulate a window
// ahead without missing a message from a peer.
//
// Delivery order is canonical: messages apply in (arrival instant, sender
// logical id, sender sequence) order, before any normal event at the same
// instant, so the receiver observes the same queue in every execution mode
// and under every shard count.
type Port[T any] struct {
	k       *Kernel
	name    string
	sh      *shard
	hop     Duration
	q       []T
	waiters []*Proc
	handler func(at Time, v T)
}

// NewPort creates a port anchored on the given shard with the given hop
// latency (clamped to >= 0).
func NewPort[T any](k *Kernel, shard int, name string, hop Duration) *Port[T] {
	if shard < 0 || shard >= len(k.shards) {
		panic(fmt.Sprintf("sim: NewPort shard %d out of range [0,%d)", shard, len(k.shards)))
	}
	if hop < 0 {
		hop = 0
	}
	return &Port[T]{k: k, name: name, sh: k.shards[shard], hop: hop}
}

// Send queues v for delivery at p's current time plus the port's hop
// latency. It never blocks. Cross-shard sends must satisfy hop >= the kernel
// lookahead. On a sharded kernel the sender must carry a logical id — the
// delivery key is (arrival, sender lid, sender seq) in both execution modes,
// so the receiver's view does not depend on when (or whether) the kernel
// parallelizes.
func (pt *Port[T]) Send(p *Proc, v T) {
	k := pt.k
	at := p.sh.now + Time(pt.hop)
	deliver := func() { pt.deliver(v) }
	var a, b uint64
	if k.sharded {
		if p.lid == 0 {
			panic(fmt.Sprintf("sim: process %q sends on port %q without a logical id", p.name, pt.name))
		}
		p.evseq++
		a, b = p.lid, p.evseq
	} else {
		a, b = p.key()
	}
	if p.sh != pt.sh {
		if pt.hop < k.eps {
			panic(fmt.Sprintf("sim: port %q cross-shard hop %v below kernel lookahead %v", pt.name, pt.hop, k.eps))
		}
		if k.parallel {
			p.sh.outbox = append(p.sh.outbox, xmsg{at: at, a: a, b: b, to: pt.sh, fn: deliver})
			return
		}
	}
	pt.sh.eq.pushEvent(event{t: at, band: 0, a: a, b: b, fn: deliver})
}

// SetHandler turns the port into a callback port: every delivery invokes fn
// inline in kernel context on the port's shard, at the delivery instant,
// instead of queueing for a Recv. The callback must not block (no Sleep,
// Recv, Acquire); it may wake processes, send on ports and fire signals.
// Handler ports are the zero-handshake completion primitive of the serving
// data plane: one heap event per message, no parked consumer process. Set
// the handler before any delivery and never combine it with Recv.
func (pt *Port[T]) SetHandler(fn func(at Time, v T)) { pt.handler = fn }

// deliver runs in kernel context on the port's shard at the arrival instant.
func (pt *Port[T]) deliver(v T) {
	if pt.handler != nil {
		pt.handler(pt.sh.now, v)
		return
	}
	pt.q = append(pt.q, v)
	if len(pt.waiters) > 0 {
		w := pt.waiters[0]
		pt.waiters = pt.waiters[1:]
		pt.k.wake(w)
	}
}

// Recv blocks p until a message is available and returns it. p must run on
// the port's shard.
func (pt *Port[T]) Recv(p *Proc) T {
	if p.sh != pt.sh {
		panic(fmt.Sprintf("sim: Recv on port %q from shard %d (port lives on shard %d)", pt.name, p.sh.id, pt.sh.id))
	}
	for len(pt.q) == 0 {
		pt.waiters = append(pt.waiters, p)
		p.park(func() {
			for i, w := range pt.waiters {
				if w == p {
					pt.waiters = append(pt.waiters[:i], pt.waiters[i+1:]...)
					break
				}
			}
		})
	}
	v := pt.q[0]
	pt.q = pt.q[1:]
	return v
}

// TryRecv returns the next message without blocking; ok is false when the
// port is empty. p must run on the port's shard.
func (pt *Port[T]) TryRecv(p *Proc) (v T, ok bool) {
	if p.sh != pt.sh {
		panic(fmt.Sprintf("sim: TryRecv on port %q from shard %d (port lives on shard %d)", pt.name, p.sh.id, pt.sh.id))
	}
	if len(pt.q) == 0 {
		return v, false
	}
	v = pt.q[0]
	pt.q = pt.q[1:]
	return v, true
}

// Len returns the number of delivered, unconsumed messages. Call it only
// from the port's shard.
func (pt *Port[T]) Len() int { return len(pt.q) }
