package sim

import "math"

// PSEngine models a compute engine whose capacity (e.g., GPU streaming
// multiprocessors) is shared among concurrently running jobs, in the style of
// a processor-sharing queue.
//
// A job declares a demand (units it can use, e.g. SMs a kernel's grid fills)
// and a work amount expressed as the ideal duration the job would take if it
// were granted its full demand. While the sum of demands fits within the
// capacity, every job runs at full speed (this is what makes spatial sharing
// profitable); once the engine is oversubscribed, all jobs slow down by the
// ratio capacity/totalDemand (hardware time-multiplexing).
//
// This reproduces the shape of CRONUS Figure 11a: two half-sized tenants on
// one GPU run almost fully in parallel, while four tenants contend.
type PSEngine struct {
	k        *Kernel
	name     string
	capacity float64
	jobs     []*psJob // insertion order: keeps same-timestamp wakes deterministic
	last     Time     // time of the last settle
}

type psJob struct {
	p         *Proc
	demand    float64
	remaining float64 // ideal nanoseconds of work left
}

// NewPSEngine creates a processor-sharing engine with the given capacity.
func NewPSEngine(k *Kernel, name string, capacity float64) *PSEngine {
	if capacity <= 0 {
		panic("sim: PSEngine capacity must be positive")
	}
	return &PSEngine{k: k, name: name, capacity: capacity}
}

// Capacity returns the configured capacity in demand units.
func (e *PSEngine) Capacity() float64 { return e.capacity }

// Active returns the number of jobs currently executing.
func (e *PSEngine) Active() int { return len(e.jobs) }

// factor is the speed multiplier every active job currently runs at.
func (e *PSEngine) factor() float64 {
	total := 0.0
	for _, j := range e.jobs {
		total += j.demand
	}
	if total <= e.capacity {
		return 1
	}
	return e.capacity / total
}

// settle credits elapsed progress to every active job up to instant now.
func (e *PSEngine) settle(now Time) {
	if now == e.last {
		return
	}
	f := e.factor()
	dt := float64(now - e.last)
	for _, j := range e.jobs {
		j.remaining -= dt * f
	}
	e.last = now
}

// reproject wakes every other active job so it recomputes its finish time
// against the new factor.
func (e *PSEngine) reproject(except *psJob) {
	for _, j := range e.jobs {
		if j != except {
			e.k.wake(j.p)
		}
	}
}

// Run executes a job on the engine, blocking p until the work completes.
// demand is clamped to the engine capacity; work is the ideal duration at
// full demand.
func (e *PSEngine) Run(p *Proc, demand float64, work Duration) {
	if work <= 0 {
		return
	}
	if demand <= 0 {
		demand = 1
	}
	if demand > e.capacity {
		demand = e.capacity
	}
	j := &psJob{p: p, demand: demand, remaining: float64(work)}
	e.settle(p.Now())
	e.jobs = append(e.jobs, j)
	e.reproject(j)
	defer func() {
		// Runs on normal completion and when the process is killed
		// mid-job (partition failure): the job leaves the engine and
		// survivors speed back up.
		e.settle(p.Now())
		for i, other := range e.jobs {
			if other == j {
				e.jobs = append(e.jobs[:i], e.jobs[i+1:]...)
				break
			}
		}
		e.reproject(nil)
	}()
	for {
		e.settle(p.Now())
		if j.remaining <= 0.5 {
			return
		}
		f := e.factor()
		d := Duration(math.Ceil(j.remaining / f))
		p.SleepInterruptible(d)
	}
}

// Drain removes all jobs without waking them; used when a device is reset as
// part of failure recovery (the owning processes are killed separately).
func (e *PSEngine) Drain() {
	e.settle(e.k.nowSeq)
	e.jobs = nil
}
