// Package sim implements the discrete-event simulation kernel that underlies
// the CRONUS reproduction: virtual time, cooperatively scheduled processes,
// mailboxes, resources and a processor-sharing engine.
//
// The kernel runs each simulated thread of execution (an mEnclave thread, an
// mOS service loop, a device engine, the untrusted OS) in its own goroutine,
// but — in the default sequential mode — only one process ever runs at a
// time: every blocking operation (Sleep, mailbox receive, resource acquire)
// hands control back to the event loop. Virtual time advances only when the
// event queue does, so simulation results are fully deterministic and
// independent of the host machine.
//
// The kernel can additionally be sharded (EnableSharding): processes are
// placed on shards (SpawnOn) and, after Parallelize, shards simulate
// concurrently on their own goroutines up to a conservative lookahead
// horizon, exchanging messages only through Port values whose hop latency is
// at least the configured lookahead. Event ordering stays deterministic and
// independent of the shard count — see shard.go and DESIGN.md §13.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cronus/internal/metrics"
)

// Scheduler metrics: how many events the kernel dispatched, process churn,
// and the runnable-queue high-water mark. Recording is a no-op until the
// registry is enabled.
var (
	mEvents     = metrics.Default.Counter("sim.events.dispatched")
	mSpawned    = metrics.Default.Counter("sim.procs.spawned")
	mKilled     = metrics.Default.Counter("sim.procs.killed")
	gQueueDepth = metrics.Default.Gauge("sim.queue.depth")
)

// traceHook, when installed, observes scheduler lifecycle transitions
// ("spawn"/"kill" of a named process). The sim package cannot depend on
// internal/trace (trace depends on sim for Time), so the trace package
// installs itself here at init; the hook owns the enabled check.
var traceHook func(at Time, kind, name string)

// SetTraceHook installs the scheduler lifecycle observer. Pass nil to remove.
func SetTraceHook(f func(at Time, kind, name string)) { traceHook = f }

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration for readability.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders the instant as a duration since the epoch.
func (t Time) String() string { return Duration(t).String() }

// String renders the duration with a unit scaled to its magnitude.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < 10*Millisecond:
		return fmt.Sprintf("%.2fus", float64(d)/1e3)
	case d < 10*Second:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(d)/1e9)
	}
}

// Seconds reports the duration as a floating point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Milliseconds reports the duration as a floating point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e6 }

// event is one entry in a shard's queue. The key is (t, band, a, b):
//
//   - sequential mode: band 1, a 0, b a global schedule sequence — exactly
//     the (time, sequence) order of the original single-queue kernel, and
//     independent of how processes are assigned to shards (the global
//     sequence makes the multi-queue merge behave as one queue);
//   - parallel mode: a is the logical id of the process the event belongs
//     to (or of the sender, for port deliveries) and b a per-process
//     counter, so the order is a deterministic function of the simulated
//     program alone — byte-identical for every shard count and assignment;
//   - band 0 is reserved for Port deliveries, which apply before normal
//     events at the same instant regardless of mode.
//
// fn events are kernel callbacks (port deliveries, Proc.CallAt timers): they
// run inline on the dispatching goroutine with no process handshake.
type event struct {
	t    Time
	band uint8
	a, b uint64
	p    *Proc
	gen  uint64 // wake generation; stale events are skipped
	fn   func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	if q[i].band != q[j].band {
		return q[i].band < q[j].band
	}
	if q[i].a != q[j].a {
		return q[i].a < q[j].a
	}
	return q[i].b < q[j].b
}
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any          { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q eventQueue) peek() event        { return q[0] }
func (q *eventQueue) popEvent() event   { return heap.Pop(q).(event) }
func (q *eventQueue) pushEvent(e event) { heap.Push(q, e) }

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procQueued  procState = iota // has a pending event in the queue
	procParked                   // blocked with no pending event (waiting for a wake)
	procRunning                  // currently executing
	procDead                     // finished or killed
)

// killToken is the panic value used to unwind a killed process. It is
// recovered by the process trampoline and never escapes the kernel.
type killToken struct{ p *Proc }

// Proc is a simulated thread of execution. All blocking simulation
// operations are methods on the Proc that represents the caller.
type Proc struct {
	k      *Kernel
	sh     *shard
	name   string
	id     int
	resume chan struct{}
	state  procState
	gen    uint64
	killed bool
	// onKill callbacks run (in kernel context) when the process is killed
	// while parked, letting wait-queues drop it eagerly.
	onKill func()
	// lid is the application-assigned logical id (SetLID). In the parallel
	// phase it keys every event the process schedules, making event order a
	// function of the simulated program rather than of shard placement.
	lid uint64
	// evseq counts events scheduled on behalf of this process in the
	// parallel phase; (lid, evseq) is the placement-invariant event key.
	evseq    uint64
	childCtr uint64
	// traceID/spanID carry the causal-tracing span context: the request
	// trace this process is currently working for and the enclosing span.
	// The kernel never reads them; internal/trace threads them through so
	// instrumentation hooks link into the right span tree without any
	// signature changes. Zero means "no context".
	traceID uint64
	spanID  uint64
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// ID returns the process's stable identifier: spawn order for processes
// created in sequential mode, a logical-id-derived value for processes
// spawned during the parallel phase (so the id is independent of shard
// placement and host interleaving).
func (p *Proc) ID() int { return p.id }

// Kernel returns the owning simulation kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time as seen by this process (its shard's
// clock; identical to Kernel.Now in the unsharded kernel).
func (p *Proc) Now() Time { return p.sh.now }

// Shard returns the id of the shard this process runs on (0 when unsharded).
func (p *Proc) Shard() int { return p.sh.id }

// TraceCtx returns the process's current causal span context (trace id and
// enclosing span id); both are zero when no request context is attached.
func (p *Proc) TraceCtx() (traceID, spanID uint64) { return p.traceID, p.spanID }

// SetTraceCtx attaches a causal span context to the process (zeros detach).
// Only one process runs at a time on a given shard, so no synchronization is
// needed.
func (p *Proc) SetTraceCtx(traceID, spanID uint64) {
	p.traceID = traceID
	p.spanID = spanID
}

// DeadlockError is returned by Run when no events remain but live processes
// are still parked waiting for wakes that can never arrive.
type DeadlockError struct {
	Parked []string // names of the parked processes
}

// Error implements error.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock, %d process(es) parked forever: %v", len(e.Parked), e.Parked)
}

// PanicError wraps a panic raised by process code so Run can surface it as an
// error without tearing down the host test process.
type PanicError struct {
	Proc  string
	Value any
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", e.Proc, e.Value)
}

// shard is one event domain of the kernel: its own clock, queue, parked set
// and yield channel. The unsharded kernel is a single shard. Only one
// goroutine drives a shard at a time: the coordinator in sequential mode,
// the shard's dispatcher goroutine during parallel windows.
type shard struct {
	k      *Kernel
	id     int
	now    Time
	eq     eventQueue
	parked map[*Proc]struct{}
	procs  map[*Proc]struct{} // all live processes on this shard, for Shutdown
	yield  chan struct{}
	cur    *Proc

	// outbox buffers cross-shard port sends made during a parallel window;
	// the coordinator drains it into the target shards at the barrier.
	outbox []xmsg

	// work/done carry window horizons to the dispatcher goroutine and
	// completions back (started lazily at Parallelize).
	work chan Time
	done chan struct{}
}

// xmsg is one buffered cross-shard send: an arrival callback plus its
// placement-invariant key (arrival instant, sender lid, sender seq).
type xmsg struct {
	at Time
	a  uint64
	b  uint64
	to *shard
	fn func()
}

// Kernel is the discrete-event scheduler. The zero value is not usable; use
// NewKernel.
type Kernel struct {
	shards []*shard
	nowSeq Time   // global clock of the sequential mode
	gseq   uint64 // global schedule sequence of the sequential mode
	nextID int
	eps    Duration // lookahead: minimum cross-shard port hop latency
	seqCur *Proc    // process being dispatched in sequential mode

	sharded  bool // EnableSharding called
	parallel bool // currently in the parallel phase (toggled at safe points)
	everPar  bool // Parallelize happened (Sequentialize is meaningful)
	pendPar  bool // Parallelize requested; switch at next dispatch boundary
	started  bool // shard dispatcher goroutines are running

	live    atomic.Int64
	stopped atomic.Bool
	seqReq  atomic.Bool // Sequentialize requested (checked by shard windows)
	errSet  atomic.Bool
	errMu   sync.Mutex
	err     error
	run     bool
}

// NewKernel creates an empty simulation at time zero with a single shard.
func NewKernel() *Kernel {
	k := &Kernel{}
	k.shards = []*shard{newShard(k, 0)}
	return k
}

func newShard(k *Kernel, id int) *shard {
	return &shard{
		k:      k,
		id:     id,
		yield:  make(chan struct{}),
		parked: make(map[*Proc]struct{}),
		procs:  make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time of the sequential clock. It must not
// be called from process code during the parallel phase — shard clocks are
// decoupled there; use Proc.Now instead (the kernel panics to surface such
// callers deterministically).
func (k *Kernel) Now() Time {
	if k.parallel {
		panic("sim: Kernel.Now during the parallel phase (use Proc.Now)")
	}
	return k.nowSeq
}

// setErr records the first error raised by process code.
func (k *Kernel) setErr(err error) {
	k.errMu.Lock()
	if k.err == nil {
		k.err = err
		k.errSet.Store(true)
	}
	k.errMu.Unlock()
}

func (k *Kernel) getErr() error {
	if !k.errSet.Load() {
		return nil
	}
	k.errMu.Lock()
	defer k.errMu.Unlock()
	return k.err
}

// Spawn creates a process running fn and schedules it to start at the
// current virtual time, on the shard of the spawning process (shard 0 when
// called from outside process code). It may be called before Run or from
// inside a running process, but not during the parallel phase — use
// Proc.Spawn there.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(k.seqNow(), name, fn)
}

func (k *Kernel) seqNow() Time {
	if k.parallel {
		panic("sim: Kernel.Spawn during the parallel phase (use Proc.Spawn)")
	}
	return k.nowSeq
}

// SpawnAt creates a process running fn, starting at time t (which must not be
// in the past; earlier times are clamped to now).
func (k *Kernel) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	if k.parallel {
		panic("sim: Kernel.SpawnAt during the parallel phase (use Proc.Spawn)")
	}
	if t < k.nowSeq {
		t = k.nowSeq
	}
	sh := k.shards[0]
	if k.seqCur != nil && k.seqCur.state == procRunning {
		sh = k.seqCur.sh
	}
	k.nextID++
	return k.spawn(sh, t, name, fn, 0, k.nextID)
}

// spawn creates the process structure, starts its trampoline goroutine and
// schedules its first event. Callers supply the shard, logical id and stable
// id appropriate to the current mode.
func (k *Kernel) spawn(sh *shard, t Time, name string, fn func(p *Proc), lid uint64, id int) *Proc {
	p := &Proc{
		k:      k,
		sh:     sh,
		name:   name,
		id:     id,
		lid:    lid,
		resume: make(chan struct{}),
		state:  procQueued,
	}
	k.live.Add(1)
	sh.procs[p] = struct{}{}
	mSpawned.Inc()
	if traceHook != nil {
		traceHook(t, "spawn", name)
	}
	go func() {
		<-p.resume
		defer func() {
			r := recover()
			if r != nil {
				if _, ok := r.(killToken); !ok {
					k.setErr(&PanicError{Proc: p.name, Value: r})
				}
			}
			p.state = procDead
			k.live.Add(-1)
			delete(sh.procs, p)
			sh.yield <- struct{}{}
		}()
		p.state = procRunning
		p.gen++
		if p.killed {
			panic(killToken{p})
		}
		fn(p)
	}()
	sh.schedule(t, p)
	return p
}

// schedule queues p's next event at time t with the mode-appropriate key.
func (sh *shard) schedule(t Time, p *Proc) {
	k := sh.k
	if k.parallel {
		p.evseq++
		sh.eq.pushEvent(event{t: t, band: 1, a: p.lid, b: p.evseq, p: p, gen: p.gen})
		return
	}
	k.gseq++
	sh.eq.pushEvent(event{t: t, band: 1, b: k.gseq, p: p, gen: p.gen})
}

// Run executes events until the queue drains. It returns nil on a clean
// finish (all processes done), a *DeadlockError if parked processes remain,
// or a *PanicError if process code panicked.
func (k *Kernel) Run() error {
	return k.RunUntil(-1)
}

// RunUntil executes events with timestamps <= deadline (deadline < 0 means no
// limit). Processes with later events stay queued, so the simulation can be
// resumed by calling RunUntil again.
func (k *Kernel) RunUntil(deadline Time) error {
	if k.run {
		panic("sim: Kernel.Run is not reentrant")
	}
	k.run = true
	defer func() { k.run = false }()
	for {
		if k.pendPar {
			k.pendPar = false
			k.beginParallel()
		}
		if k.parallel {
			err, finished := k.runParallel(deadline)
			if finished {
				return err
			}
			continue // Sequentialize switched the mode; keep going below
		}
		if err := k.getErr(); err != nil {
			return err
		}
		if k.stopped.Load() {
			return nil
		}
		sh := k.minShard()
		if sh == nil {
			if k.live.Load() > 0 {
				return k.deadlock()
			}
			return nil
		}
		if deadline >= 0 && sh.eq.peek().t > deadline {
			k.nowSeq = deadline
			return nil
		}
		ev := sh.eq.popEvent()
		k.dispatchSeq(sh, ev)
	}
}

// minShard returns the shard holding the globally minimal pending event, or
// nil when every queue is empty. With one shard this is a direct peek.
func (k *Kernel) minShard() *shard {
	if len(k.shards) == 1 {
		if k.shards[0].eq.Len() == 0 {
			return nil
		}
		return k.shards[0]
	}
	var best *shard
	for _, sh := range k.shards {
		if sh.eq.Len() == 0 {
			continue
		}
		if best == nil || keyLess(sh.eq.peek(), best.eq.peek()) {
			best = sh
		}
	}
	return best
}

// keyLess orders two events by the canonical (t, band, a, b) key.
func keyLess(x, y event) bool {
	if x.t != y.t {
		return x.t < y.t
	}
	if x.band != y.band {
		return x.band < y.band
	}
	if x.a != y.a {
		return x.a < y.a
	}
	return x.b < y.b
}

// deadlock collects the parked-process names across shards.
func (k *Kernel) deadlock() error {
	var names []string
	for _, sh := range k.shards {
		for p := range sh.parked {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return &DeadlockError{Parked: names}
}

// dispatchSeq runs one event in sequential mode, advancing both the shard
// clock and the global clock.
func (k *Kernel) dispatchSeq(sh *shard, ev event) {
	if ev.fn == nil && (ev.p.state == procDead || ev.gen != ev.p.gen || ev.p.state == procRunning) {
		return // stale wake
	}
	mEvents.Inc()
	if !k.sharded {
		gQueueDepth.Set(int64(sh.eq.Len()))
	}
	if ev.t > sh.now {
		sh.now = ev.t
	}
	if ev.t > k.nowSeq {
		k.nowSeq = ev.t
	}
	if ev.fn != nil {
		ev.fn()
		return
	}
	k.seqCur = ev.p
	sh.cur = ev.p
	ev.p.state = procRunning
	ev.p.resume <- struct{}{}
	<-sh.yield
	sh.cur = nil
	k.seqCur = nil
}

// dispatchPar runs one event inside a parallel window on sh's goroutine.
func (sh *shard) dispatchPar(ev event) {
	if ev.fn == nil && (ev.p.state == procDead || ev.gen != ev.p.gen || ev.p.state == procRunning) {
		return // stale wake
	}
	mEvents.Inc()
	if ev.t > sh.now {
		sh.now = ev.t
	}
	if ev.fn != nil {
		ev.fn()
		return
	}
	sh.cur = ev.p
	ev.p.state = procRunning
	ev.p.resume <- struct{}{}
	<-sh.yield
	sh.cur = nil
}

// block yields to the kernel and waits to be resumed; on resume the wake
// generation is bumped so pending duplicate events become stale. It panics
// with the kill token if the process was killed while blocked.
func (p *Proc) block() {
	// Already marked killed (deferred cleanup blocking during an unwind,
	// or Shutdown): terminate without stranding the goroutine. The yield
	// handshake is preserved because the trampoline yields on the panic.
	if p.killed {
		p.onKill = nil
		panic(killToken{p})
	}
	p.sh.yield <- struct{}{}
	<-p.resume
	p.gen++
	p.onKill = nil
	if p.killed {
		panic(killToken{p})
	}
}

// park blocks the process with no pending event; some other process must
// Wake it. onKill, if non-nil, runs when the process is killed while parked.
func (p *Proc) park(onKill func()) {
	p.state = procParked
	p.onKill = onKill
	p.sh.parked[p] = struct{}{}
	p.block()
}

// wake makes a blocked process runnable at the current time (the target's
// shard clock, or the global clock if that is ahead in sequential mode). For
// a process in an interruptible sleep this is an early wake; for a parked
// process it is the only way to resume. No-op for running or dead processes.
// During the parallel phase the caller must run on p's shard — cross-shard
// communication goes through Ports.
func (k *Kernel) wake(p *Proc) {
	sh := p.sh
	t := sh.now
	if !k.parallel && k.nowSeq > t {
		t = k.nowSeq
	}
	switch p.state {
	case procParked:
		delete(sh.parked, p)
		p.state = procQueued
		sh.schedule(t, p)
	case procQueued:
		sh.schedule(t, p) // early wake; the original timer goes stale
	}
}

// Sleep advances the process's virtual time by d. Sleep(0) yields without
// advancing time (other processes scheduled "now" may run).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.state = procQueued
	p.sh.schedule(p.sh.now+Time(d), p)
	p.block()
}

// SleepInterruptible sleeps for at most d; another process may cut the sleep
// short with Kernel.Interrupt. It reports whether the sleep was interrupted
// before the full duration elapsed.
func (p *Proc) SleepInterruptible(d Duration) (interrupted bool) {
	if d < 0 {
		d = 0
	}
	deadline := p.sh.now + Time(d)
	p.state = procQueued
	p.sh.schedule(deadline, p)
	p.block()
	return p.sh.now < deadline
}

// Interrupt wakes p early from an interruptible sleep (or a park). It is a
// no-op for running or dead processes.
func (k *Kernel) Interrupt(p *Proc) { k.wake(p) }

// Kill terminates a process: if it is parked or queued it unwinds at its
// next scheduling point; a process can also kill itself, which unwinds
// immediately. Killing a dead process is a no-op. During the parallel phase
// only same-shard kills are legal (failure paths call Proc.Sequentialize
// first).
func (k *Kernel) Kill(p *Proc) {
	if p == nil || p.state == procDead || p.killed {
		return
	}
	p.killed = true
	mKilled.Inc()
	if traceHook != nil {
		traceHook(k.killNow(p), "kill", p.name)
	}
	sh := p.sh
	t := sh.now
	if !k.parallel && k.nowSeq > t {
		t = k.nowSeq
	}
	switch p.state {
	case procParked:
		if p.onKill != nil {
			p.onKill()
			p.onKill = nil
		}
		delete(sh.parked, p)
		p.state = procQueued
		sh.schedule(t, p)
	case procQueued:
		sh.schedule(t, p) // cut any pending sleep short
	case procRunning:
		if p == sh.cur {
			panic(killToken{p}) // self-kill: unwind in place
		}
	}
}

// killNow picks the timestamp reported to the trace hook for a kill.
func (k *Kernel) killNow(p *Proc) Time {
	if k.parallel {
		return p.sh.now
	}
	return k.nowSeq
}

// Stop ends the simulation after the current event: Run/RunUntil returns nil
// even though service-loop processes (pollers, watchdogs) are still queued.
// Call it from the driving process when the scenario under test is complete.
// In a sharded run, Sequentialize before Stop so the cut is deterministic.
func (k *Kernel) Stop() { k.stopped.Store(true) }

// Shutdown unwinds every remaining process so their goroutines exit. Call it
// after Run/RunUntil returns, never from inside a running process. The
// kernel cannot be used again afterwards.
func (k *Kernel) Shutdown() {
	if k.run {
		panic("sim: Shutdown during Run")
	}
	k.stopDispatchers()
	for _, sh := range k.shards {
		for p := range sh.procs {
			if p.state == procDead {
				continue
			}
			p.killed = true
			p.state = procQueued
			p.resume <- struct{}{}
			<-sh.yield
		}
		sh.parked = make(map[*Proc]struct{})
	}
}

// Killed reports whether the process has been marked for termination.
func (p *Proc) Killed() bool { return p.killed }

// Dead reports whether the process has finished or been unwound.
func (p *Proc) Dead() bool { return p.state == procDead }
