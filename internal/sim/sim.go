// Package sim implements the discrete-event simulation kernel that underlies
// the CRONUS reproduction: virtual time, cooperatively scheduled processes,
// mailboxes, resources and a processor-sharing engine.
//
// The kernel runs each simulated thread of execution (an mEnclave thread, an
// mOS service loop, a device engine, the untrusted OS) in its own goroutine,
// but only one process ever runs at a time: every blocking operation
// (Sleep, mailbox receive, resource acquire) hands control back to the event
// loop. Virtual time advances only when the event queue does, so simulation
// results are fully deterministic and independent of the host machine.
package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"cronus/internal/metrics"
)

// Scheduler metrics: how many events the kernel dispatched, process churn,
// and the runnable-queue high-water mark. Recording is a no-op until the
// registry is enabled.
var (
	mEvents     = metrics.Default.Counter("sim.events.dispatched")
	mSpawned    = metrics.Default.Counter("sim.procs.spawned")
	mKilled     = metrics.Default.Counter("sim.procs.killed")
	gQueueDepth = metrics.Default.Gauge("sim.queue.depth")
)

// traceHook, when installed, observes scheduler lifecycle transitions
// ("spawn"/"kill" of a named process). The sim package cannot depend on
// internal/trace (trace depends on sim for Time), so the trace package
// installs itself here at init; the hook owns the enabled check.
var traceHook func(at Time, kind, name string)

// SetTraceHook installs the scheduler lifecycle observer. Pass nil to remove.
func SetTraceHook(f func(at Time, kind, name string)) { traceHook = f }

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration for readability.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

func (t Time) String() string { return Duration(t).String() }

func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < 10*Millisecond:
		return fmt.Sprintf("%.2fus", float64(d)/1e3)
	case d < 10*Second:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(d)/1e9)
	}
}

// Seconds reports the duration as a floating point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Milliseconds reports the duration as a floating point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e6 }

type event struct {
	t   Time
	seq uint64
	p   *Proc
	gen uint64 // wake generation; stale events are skipped
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any          { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q eventQueue) peek() event        { return q[0] }
func (q *eventQueue) popEvent() event   { return heap.Pop(q).(event) }
func (q *eventQueue) pushEvent(e event) { heap.Push(q, e) }

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procQueued  procState = iota // has a pending event in the queue
	procParked                   // blocked with no pending event (waiting for a wake)
	procRunning                  // currently executing
	procDead                     // finished or killed
)

// killToken is the panic value used to unwind a killed process. It is
// recovered by the process trampoline and never escapes the kernel.
type killToken struct{ p *Proc }

// Proc is a simulated thread of execution. All blocking simulation
// operations are methods on the Proc that represents the caller.
type Proc struct {
	k      *Kernel
	name   string
	id     int
	resume chan struct{}
	state  procState
	gen    uint64
	killed bool
	// onKill callbacks run (in kernel context) when the process is killed
	// while parked, letting wait-queues drop it eagerly.
	onKill func()
	// traceID/spanID carry the causal-tracing span context: the request
	// trace this process is currently working for and the enclosing span.
	// The kernel never reads them; internal/trace threads them through so
	// instrumentation hooks link into the right span tree without any
	// signature changes. Zero means "no context".
	traceID uint64
	spanID  uint64
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// ID returns the process's stable spawn-order identifier.
func (p *Proc) ID() int { return p.id }

// Kernel returns the owning simulation kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// TraceCtx returns the process's current causal span context (trace id and
// enclosing span id); both are zero when no request context is attached.
func (p *Proc) TraceCtx() (traceID, spanID uint64) { return p.traceID, p.spanID }

// SetTraceCtx attaches a causal span context to the process (zeros detach).
// Only one process runs at a time, so no synchronization is needed.
func (p *Proc) SetTraceCtx(traceID, spanID uint64) {
	p.traceID = traceID
	p.spanID = spanID
}

// DeadlockError is returned by Run when no events remain but live processes
// are still parked waiting for wakes that can never arrive.
type DeadlockError struct {
	Parked []string // names of the parked processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock, %d process(es) parked forever: %v", len(e.Parked), e.Parked)
}

// PanicError wraps a panic raised by process code so Run can surface it as an
// error without tearing down the host test process.
type PanicError struct {
	Proc  string
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", e.Proc, e.Value)
}

// Kernel is the discrete-event scheduler. The zero value is not usable; use
// NewKernel.
type Kernel struct {
	now     Time
	eq      eventQueue
	seq     uint64
	nextID  int
	live    int // processes spawned and not yet dead
	parked  map[*Proc]struct{}
	procs   map[*Proc]struct{} // all live processes, for Shutdown
	yield   chan struct{}
	cur     *Proc
	err     error
	run     bool
	stopped bool
}

// NewKernel creates an empty simulation at time zero.
func NewKernel() *Kernel {
	return &Kernel{
		yield:  make(chan struct{}),
		parked: make(map[*Proc]struct{}),
		procs:  make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Spawn creates a process running fn and schedules it to start at the
// current virtual time. It may be called before Run or from inside a running
// process.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt creates a process running fn, starting at time t (which must not be
// in the past; earlier times are clamped to now).
func (k *Kernel) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	if t < k.now {
		t = k.now
	}
	k.nextID++
	p := &Proc{
		k:      k,
		name:   name,
		id:     k.nextID,
		resume: make(chan struct{}),
		state:  procQueued,
	}
	k.live++
	k.procs[p] = struct{}{}
	mSpawned.Inc()
	if traceHook != nil {
		traceHook(t, "spawn", name)
	}
	go func() {
		<-p.resume
		defer func() {
			r := recover()
			if r != nil {
				if _, ok := r.(killToken); !ok && k.err == nil {
					k.err = &PanicError{Proc: p.name, Value: r}
				}
			}
			p.state = procDead
			k.live--
			delete(k.procs, p)
			k.yield <- struct{}{}
		}()
		p.state = procRunning
		p.gen++
		if p.killed {
			panic(killToken{p})
		}
		fn(p)
	}()
	k.schedule(t, p)
	return p
}

func (k *Kernel) schedule(t Time, p *Proc) {
	k.seq++
	k.eq.pushEvent(event{t: t, seq: k.seq, p: p, gen: p.gen})
}

// Run executes events until the queue drains. It returns nil on a clean
// finish (all processes done), a *DeadlockError if parked processes remain,
// or a *PanicError if process code panicked.
func (k *Kernel) Run() error {
	return k.RunUntil(-1)
}

// RunUntil executes events with timestamps <= deadline (deadline < 0 means no
// limit). Processes with later events stay queued, so the simulation can be
// resumed by calling RunUntil again.
func (k *Kernel) RunUntil(deadline Time) error {
	if k.run {
		panic("sim: Kernel.Run is not reentrant")
	}
	k.run = true
	defer func() { k.run = false }()
	for k.err == nil {
		if k.stopped {
			return nil
		}
		if k.eq.Len() == 0 {
			if k.live > 0 {
				names := make([]string, 0, len(k.parked))
				for p := range k.parked {
					names = append(names, p.name)
				}
				sort.Strings(names)
				return &DeadlockError{Parked: names}
			}
			return nil
		}
		if deadline >= 0 && k.eq.peek().t > deadline {
			k.now = deadline
			return nil
		}
		ev := k.eq.popEvent()
		if ev.p.state == procDead || ev.gen != ev.p.gen || ev.p.state == procRunning {
			continue // stale wake
		}
		mEvents.Inc()
		gQueueDepth.Set(int64(k.eq.Len()))
		if ev.t > k.now {
			k.now = ev.t
		}
		k.cur = ev.p
		ev.p.state = procRunning
		ev.p.resume <- struct{}{}
		<-k.yield
		k.cur = nil
	}
	return k.err
}

// block yields to the kernel and waits to be resumed; on resume the wake
// generation is bumped so pending duplicate events become stale. It panics
// with the kill token if the process was killed while blocked.
func (p *Proc) block() {
	// Already marked killed (deferred cleanup blocking during an unwind,
	// or Shutdown): terminate without stranding the goroutine. The yield
	// handshake is preserved because the trampoline yields on the panic.
	if p.killed {
		p.onKill = nil
		panic(killToken{p})
	}
	p.k.yield <- struct{}{}
	<-p.resume
	p.gen++
	p.onKill = nil
	if p.killed {
		panic(killToken{p})
	}
}

// park blocks the process with no pending event; some other process must
// Wake it. onKill, if non-nil, runs when the process is killed while parked.
func (p *Proc) park(onKill func()) {
	p.state = procParked
	p.onKill = onKill
	p.k.parked[p] = struct{}{}
	p.block()
}

// wake makes a blocked process runnable at the current time. For a process in
// an interruptible sleep this is an early wake; for a parked process it is
// the only way to resume. No-op for running or dead processes.
func (k *Kernel) wake(p *Proc) {
	switch p.state {
	case procParked:
		delete(k.parked, p)
		p.state = procQueued
		k.schedule(k.now, p)
	case procQueued:
		k.schedule(k.now, p) // early wake; the original timer goes stale
	}
}

// Sleep advances the process's virtual time by d. Sleep(0) yields without
// advancing time (other processes scheduled "now" may run).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.state = procQueued
	p.k.schedule(p.k.now+Time(d), p)
	p.block()
}

// SleepInterruptible sleeps for at most d; another process may cut the sleep
// short with Kernel.Interrupt. It reports whether the sleep was interrupted
// before the full duration elapsed.
func (p *Proc) SleepInterruptible(d Duration) (interrupted bool) {
	if d < 0 {
		d = 0
	}
	deadline := p.k.now + Time(d)
	p.state = procQueued
	p.k.schedule(deadline, p)
	p.block()
	return p.k.now < deadline
}

// Interrupt wakes p early from an interruptible sleep (or a park). It is a
// no-op for running or dead processes.
func (k *Kernel) Interrupt(p *Proc) { k.wake(p) }

// Kill terminates a process: if it is parked or queued it unwinds at its
// next scheduling point; a process can also kill itself, which unwinds
// immediately. Killing a dead process is a no-op.
func (k *Kernel) Kill(p *Proc) {
	if p == nil || p.state == procDead || p.killed {
		return
	}
	p.killed = true
	mKilled.Inc()
	if traceHook != nil {
		traceHook(k.now, "kill", p.name)
	}
	switch p.state {
	case procParked:
		if p.onKill != nil {
			p.onKill()
			p.onKill = nil
		}
		delete(k.parked, p)
		p.state = procQueued
		k.schedule(k.now, p)
	case procQueued:
		k.schedule(k.now, p) // cut any pending sleep short
	case procRunning:
		if p == k.cur {
			panic(killToken{p}) // self-kill: unwind in place
		}
	}
}

// Stop ends the simulation after the current event: Run/RunUntil returns nil
// even though service-loop processes (pollers, watchdogs) are still queued.
// Call it from the driving process when the scenario under test is complete.
func (k *Kernel) Stop() { k.stopped = true }

// Shutdown unwinds every remaining process so their goroutines exit. Call it
// after Run/RunUntil returns, never from inside a running process. The
// kernel cannot be used again afterwards.
func (k *Kernel) Shutdown() {
	if k.run {
		panic("sim: Shutdown during Run")
	}
	for p := range k.procs {
		if p.state == procDead {
			continue
		}
		p.killed = true
		p.state = procQueued
		p.resume <- struct{}{}
		<-k.yield
	}
	k.parked = make(map[*Proc]struct{})
}

// Killed reports whether the process has been marked for termination.
func (p *Proc) Killed() bool { return p.killed }

// Dead reports whether the process has finished or been unwound.
func (p *Proc) Dead() bool { return p.state == procDead }
