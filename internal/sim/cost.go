package sim

// CostModel holds the calibrated virtual-time costs of the architectural
// operations the CRONUS evaluation is sensitive to. The absolute values are
// representative of the paper's AArch64/QEMU platform; the evaluation claims
// reproduced by this repository depend on the *ratios* (e.g., an S-EL2
// synchronous RPC needs at least four context switches, encrypted RPC pays
// per-byte AES, an mOS restart is ~3 orders of magnitude cheaper than a
// machine reboot), not on the absolute numbers.
type CostModel struct {
	// World / partition switching.
	WorldSwitch     Duration // SMC normal <-> secure world transition
	ContextSwitchS2 Duration // one S-EL2 partition context switch
	EnclaveEntry    Duration // entering/leaving an mEnclave inside a partition
	SyscallTrap     Duration // mOS shim syscall dispatch

	// RPC plumbing.
	RingPush      Duration // enqueue one sRPC record into trusted shared memory
	RingPoll      Duration // one executor poll of the ring indices
	RPCDispatch   Duration // demarshal + mECall table lookup
	SpinlockOp    Duration // CAS on trusted shared memory
	UntrustedMsg  Duration // post + pick up one message via untrusted memory
	ThreadCreate  Duration // normal world creating the executor thread
	StreamSetup   Duration // stream header init in smem (first call only)
	LocalAttest   Duration // local attestation round (report + verify)
	DhkeHandshake Duration // Diffie-Hellman key agreement during create
	SignFixed     Duration // asymmetric signature (attestation)
	VerifyFixed   Duration // asymmetric verification (attestation)
	HashPerByte   float64  // measurement hashing, ns/byte
	AESFixed      Duration // per-message AES-GCM setup (HIX-style RPC)
	AESPerByte    float64  // AES-GCM, ns/byte
	MACFixed      Duration // HMAC over an untrusted-memory message

	// Memory and bus.
	MemcpyPerByte float64  // CPU memcpy inside one address space, ns/byte
	PCIeLatency   Duration // per-transaction PCIe round trip
	PCIePerByte   float64  // PCIe DMA, ns/byte
	MapPage       Duration // stage-1/stage-2 page table update, per page
	SpanCheck     Duration // TZASC + stage-2 span permission check (zero-copy grants)
	SMMUInval     Duration // SMMU TLB invalidation
	Stage2Inval   Duration // stage-2 invalidation per shared region
	PageFaultTrap Duration // trap delivery to the SPM and signal to the mEnclave
	DeviceMMIO    Duration // one MMIO register access

	// Device execution.
	KernelDispatch Duration // driver work to launch one GPU kernel
	NPUCyclePerNs  float64  // NPU cycles executed per virtual ns (clock rate)

	// Failure handling.
	MOSRestart    Duration // clear device + reload + init one mOS
	DeviceClear   Duration // scrub device memory (A3 defence)
	MachineReboot Duration // full platform reboot (monolithic recovery)
	HangPollEvery Duration // SPM watchdog period
}

// DefaultCosts returns the calibrated cost model used by all experiments.
func DefaultCosts() *CostModel {
	return &CostModel{
		WorldSwitch:     2600 * Nanosecond,
		ContextSwitchS2: 3400 * Nanosecond,
		EnclaveEntry:    900 * Nanosecond,
		SyscallTrap:     350 * Nanosecond,

		RingPush:      120 * Nanosecond,
		RingPoll:      80 * Nanosecond,
		RPCDispatch:   260 * Nanosecond,
		SpinlockOp:    60 * Nanosecond,
		UntrustedMsg:  1800 * Nanosecond,
		ThreadCreate:  9000 * Nanosecond,
		StreamSetup:   2400 * Nanosecond,
		LocalAttest:   52 * Microsecond,
		DhkeHandshake: 210 * Microsecond,
		SignFixed:     160 * Microsecond,
		VerifyFixed:   240 * Microsecond,
		HashPerByte:   0.45,
		AESFixed:      1400 * Nanosecond,
		AESPerByte:    0.42,
		MACFixed:      950 * Nanosecond,

		MemcpyPerByte: 0.125, // ~8 GB/s
		PCIeLatency:   900 * Nanosecond,
		PCIePerByte:   0.085, // ~11.7 GB/s
		MapPage:       700 * Nanosecond,
		SpanCheck:     90 * Nanosecond,
		SMMUInval:     1100 * Nanosecond,
		Stage2Inval:   2300 * Nanosecond,
		PageFaultTrap: 5200 * Nanosecond,
		DeviceMMIO:    210 * Nanosecond,

		KernelDispatch: 4800 * Nanosecond,
		// The paper's NPU is TVM's fsim functional simulator behind a
		// QEMU PCIe device (§V-B), ~10⁴× slower than 700 MHz silicon —
		// the reason its Figure 10 inference latencies are long.
		NPUCyclePerNs: 0.005,

		MOSRestart:    230 * Millisecond,
		DeviceClear:   60 * Millisecond,
		MachineReboot: 118 * Second,
		HangPollEvery: 10 * Millisecond,
	}
}

// Memcpy returns the virtual time to copy n bytes within one address space.
func (c *CostModel) Memcpy(n int) Duration {
	return Duration(float64(n) * c.MemcpyPerByte)
}

// DMA returns the virtual time for a PCIe DMA transfer of n bytes.
func (c *CostModel) DMA(n int) Duration {
	return c.PCIeLatency + Duration(float64(n)*c.PCIePerByte)
}

// Encrypt returns the virtual time to AES-GCM seal or open n bytes.
func (c *CostModel) Encrypt(n int) Duration {
	return c.AESFixed + Duration(float64(n)*c.AESPerByte)
}

// Hash returns the virtual time to measure n bytes.
func (c *CostModel) Hash(n int) Duration {
	return Duration(float64(n) * c.HashPerByte)
}

// SyncRPCSwitch returns the cost of one synchronous cross-partition call
// direction: per the paper (§IV-C), at least four S-EL2 context switches are
// required to move control from one mEnclave to another.
func (c *CostModel) SyncRPCSwitch() Duration {
	return 4 * c.ContextSwitchS2
}
