package sim

// This file supports event-efficient modeling of polling loops. A simulated
// poller that re-reads a word every quantum costs the event queue O(wait/
// quantum) timer events even though nothing changes between reads. Cond lets
// the waiter park until a producer announces progress (one wakeup event), and
// NextPollInstant recovers the virtual instant at which the polling loop
// would have performed its next read — so the optimized waiter observes state
// at exactly the same virtual times, and virtual-time results are unchanged.

// Cond is an edge-triggered broadcast: Wait parks until the next Broadcast.
// Unlike Signal it does not latch — a Broadcast with no waiters is lost, so
// callers must re-check their predicate after waking (the standard condition-
// variable discipline). Wakeups are delivered in Wait order.
type Cond struct {
	k       *Kernel
	waiters []*Proc
}

// NewCond creates a condition with no waiters.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait parks p until the next Broadcast. Spurious wakeups are possible (e.g.
// a broadcast for a different predicate); callers loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park(func() { c.drop(p) })
}

// Broadcast wakes every currently parked waiter, in Wait order. It never
// blocks and may be called from any proc or from callback context.
func (c *Cond) Broadcast() {
	if len(c.waiters) == 0 {
		return
	}
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		if w.state == procParked {
			c.k.wake(w)
		}
	}
}

func (c *Cond) drop(p *Proc) {
	for i, w := range c.waiters {
		if w == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// NextPollInstant returns the earliest instant in the series {first, first+
// period, first+2·period, ...} that is ≥ now: the virtual time at which a
// polling loop with read instants on that grid would next observe state.
// period must be positive.
func NextPollInstant(first Time, period Duration, now Time) Time {
	if period <= 0 {
		panic("sim: NextPollInstant period must be positive")
	}
	if now <= first {
		return first
	}
	k := (Duration(now-first) + period - 1) / period // ceil
	return first + Time(k)*Time(period)
}
