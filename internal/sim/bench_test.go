package sim

import "testing"

// BenchmarkKernelContextSwitch measures one simulated process switch (sleep
// + resume round trip) — the simulation's own overhead floor.
func BenchmarkKernelContextSwitch(b *testing.B) {
	k := NewKernel()
	k.Spawn("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMailboxRoundTrip measures one send + blocking receive handoff
// between two simulated processes.
func BenchmarkMailboxRoundTrip(b *testing.B) {
	k := NewKernel()
	req := NewMailbox[int](k, "req")
	rsp := NewMailbox[int](k, "rsp")
	k.Spawn("server", func(p *Proc) {
		for {
			v, ok := req.Recv(p)
			if !ok {
				return
			}
			rsp.Send(v)
		}
	})
	k.Spawn("client", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			req.Send(i)
			rsp.Recv(p)
		}
		req.Close()
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPSEngineChurn measures job arrival/departure with reprojection
// across four concurrent tenants.
func BenchmarkPSEngineChurn(b *testing.B) {
	k := NewKernel()
	e := NewPSEngine(k, "gpu", 46)
	for t := 0; t < 4; t++ {
		k.Spawn("tenant", func(p *Proc) {
			for i := 0; i < b.N/4+1; i++ {
				e.Run(p, 20, 100)
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
