package sim

import (
	"fmt"
	"testing"
)

// BenchmarkKernelContextSwitch measures one simulated process switch (sleep
// + resume round trip) — the simulation's own overhead floor.
func BenchmarkKernelContextSwitch(b *testing.B) {
	k := NewKernel()
	k.Spawn("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMailboxRoundTrip measures one send + blocking receive handoff
// between two simulated processes.
func BenchmarkMailboxRoundTrip(b *testing.B) {
	k := NewKernel()
	req := NewMailbox[int](k, "req")
	rsp := NewMailbox[int](k, "rsp")
	k.Spawn("server", func(p *Proc) {
		for {
			v, ok := req.Recv(p)
			if !ok {
				return
			}
			rsp.Send(v)
		}
	})
	k.Spawn("client", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			req.Send(i)
			rsp.Recv(p)
		}
		req.Close()
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPSEngineChurn measures job arrival/departure with reprojection
// across four concurrent tenants.
func BenchmarkPSEngineChurn(b *testing.B) {
	k := NewKernel()
	e := NewPSEngine(k, "gpu", 46)
	for t := 0; t < 4; t++ {
		k.Spawn("tenant", func(p *Proc) {
			for i := 0; i < b.N/4+1; i++ {
				e.Run(p, 20, 100)
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShardedEngine measures the sharded kernel on N independent
// partitions x M events each: every partition worker burns through local
// sleeps with a cross-shard completion send per batch, the shape of the
// serving hot path. Sub-benchmarks compare the sequential merge (shards=1)
// with parallel windows (shards=4/8) over the same workload; vreq-shaped
// determinism is asserted by TestShardedDeterminismTorture, here we only
// time the host.
func BenchmarkShardedEngine(b *testing.B) {
	const parts = 8
	for _, shards := range []int{1, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			events := b.N
			perPart := events/parts + 1
			k := NewKernel()
			k.EnableSharding(shards+1, 25*Microsecond)
			completions := NewPort[int](k, 0, "done", 25*Microsecond)
			for i := 0; i < parts; i++ {
				sh := 0
				if shards > 1 {
					sh = 1 + i%shards
				}
				k.SpawnOn(sh, uint64(100+i), fmt.Sprintf("worker-%d", i), func(p *Proc) {
					for n := 0; n < perPart; n++ {
						p.Sleep(2 * Microsecond)
					}
					completions.Send(p, 1)
				})
			}
			k.SpawnOn(0, 1, "host", func(p *Proc) {
				k.Parallelize()
				for n := 0; n < parts; n++ {
					completions.Recv(p)
				}
				p.Sequentialize()
			})
			b.ResetTimer()
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			k.Shutdown()
		})
	}
}
