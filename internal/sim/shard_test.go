package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// shardScript is one pre-drawn synthetic workload: all randomness is drawn
// up front so every shard count and assignment consumes identical values.
type shardScript struct {
	parts    int
	jobs     int
	target   []int      // job -> partition
	dur      []Duration // job -> service time
	gap      []Duration // job -> arrival gap before the next dispatch
	children []bool     // job -> whether the worker forks a helper child
}

func makeShardScript(seed int64, parts, jobs int) shardScript {
	rng := rand.New(rand.NewSource(seed))
	s := shardScript{parts: parts, jobs: jobs}
	for j := 0; j < jobs; j++ {
		s.target = append(s.target, rng.Intn(parts))
		s.dur = append(s.dur, Duration(1+rng.Intn(40))*Microsecond)
		s.gap = append(s.gap, Duration(rng.Intn(12))*Microsecond)
		s.children = append(s.children, rng.Intn(3) == 0)
	}
	return s
}

// runShardScript executes the script on a kernel with the given shard count
// and partition->shard assignment and returns the canonical completion log.
// Structure: a host on shard 0 parallelizes after boot, dispatches jobs over
// ports, collects completions over a port, then sequentializes and shuts the
// workers down — the same life cycle the serving plane uses.
func runShardScript(t *testing.T, s shardScript, shards int, assign func(int) int) string {
	t.Helper()
	const eps = 5 * Microsecond
	k := NewKernel()
	k.EnableSharding(shards, eps)
	var log strings.Builder

	completions := NewPort[[3]int64](k, 0, "completions", eps)
	dispatch := make([]*Port[int], s.parts)
	for i := 0; i < s.parts; i++ {
		i := i
		sh := assign(i)
		pt := NewPort[int](k, sh, fmt.Sprintf("dispatch-%d", i), eps)
		dispatch[i] = pt
		k.SpawnOn(sh, uint64(100+i), fmt.Sprintf("worker-%d", i), func(p *Proc) {
			for {
				job := pt.Recv(p)
				if job < 0 {
					return
				}
				if s.children[job] {
					// Fork a same-shard helper mid-parallel-phase: its id and
					// event keys must derive from the parent deterministically.
					mb := NewMailbox[int](k, "helper-done")
					p.Spawn(fmt.Sprintf("helper-%d-%d", i, job), func(q *Proc) {
						q.Sleep(s.dur[job] / 2)
						mb.Send(job)
					})
					mb.Recv(p)
					p.Sleep(s.dur[job] / 2)
				} else {
					p.Sleep(s.dur[job])
				}
				completions.Send(p, [3]int64{int64(job), int64(i), int64(p.Now())})
			}
		})
	}

	k.SpawnOn(0, 1, "host", func(p *Proc) {
		k.Parallelize()
		p.Sleep(0)
		for j := 0; j < s.jobs; j++ {
			dispatch[s.target[j]].Send(p, j)
			p.Sleep(s.gap[j])
		}
		for n := 0; n < s.jobs; n++ {
			c := completions.Recv(p)
			fmt.Fprintf(&log, "job %d part %d done@%v seen@%v\n", c[0], c[1], Time(c[2]), p.Now())
		}
		p.Sequentialize()
		for i := range dispatch {
			dispatch[i].Send(p, -1)
		}
	})

	if err := k.Run(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	k.Shutdown()
	return log.String()
}

// TestShardedDeterminismTorture runs randomized workloads under every shard
// count and several placements and asserts byte-identical completion logs —
// the core determinism contract of DESIGN.md §13.
func TestShardedDeterminismTorture(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := makeShardScript(seed, 6, 60)
		rng := rand.New(rand.NewSource(seed * 977))
		randAssign := make([]int, s.parts)
		for i := range randAssign {
			randAssign[i] = 1 + rng.Intn(7)
		}
		ref := runShardScript(t, s, 1, func(int) int { return 0 })
		configs := []struct {
			name   string
			shards int
			assign func(int) int
		}{
			{"2-mod", 2, func(i int) int { return i % 2 }},
			{"4-mod", 4, func(i int) int { return 1 + i%3 }},
			{"8-spread", 8, func(i int) int { return 1 + i }},
			{"8-random", 8, func(i int) int { return randAssign[i] }},
		}
		for _, c := range configs {
			got := runShardScript(t, s, c.shards, c.assign)
			if got != ref {
				t.Fatalf("seed %d config %s: completion log diverged from shards=1\nref:\n%s\ngot:\n%s", seed, c.name, ref, got)
			}
		}
	}
}

// TestShardedSequentializeKill exercises the safety valve: a controller
// sequentializes mid-run and kills a cross-shard worker; outputs must stay
// identical across shard counts.
func TestShardedSequentializeKill(t *testing.T) {
	run := func(shards int) string {
		const eps = 2 * Microsecond
		k := NewKernel()
		k.EnableSharding(shards, eps)
		var log strings.Builder
		victimDone := false
		procs := make([]*Proc, 3)
		for i := 0; i < 3; i++ {
			i := i
			sh := 0
			if shards > 1 {
				sh = i % shards
			}
			procs[i] = k.SpawnOn(sh, uint64(10+i), fmt.Sprintf("w%d", i), func(p *Proc) {
				for n := 0; ; n++ {
					p.Sleep(7 * Microsecond)
					if i == 0 && n == 40 {
						victimDone = true
					}
				}
			})
		}
		k.SpawnOn(0, 1, "ctl", func(p *Proc) {
			k.Parallelize()
			p.Sleep(100 * Microsecond)
			p.Sequentialize()
			fmt.Fprintf(&log, "seq at %v victimDone=%v\n", p.Now(), victimDone)
			for _, w := range procs {
				k.Kill(w)
			}
			p.Sleep(10 * Microsecond)
			fmt.Fprintf(&log, "end at %v\n", p.Now())
			k.Stop()
		})
		if err := k.Run(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		k.Shutdown()
		return log.String()
	}
	ref := run(1)
	for _, n := range []int{2, 3} {
		if got := run(n); got != ref {
			t.Fatalf("shards=%d diverged:\nref:\n%s\ngot:\n%s", n, ref, got)
		}
	}
}

// TestPortOrdering pins the canonical delivery order: same-instant messages
// from different senders apply in logical-id order, before normal events at
// that instant, in both execution modes.
func TestPortOrdering(t *testing.T) {
	run := func(parallel bool) string {
		const eps = 1 * Microsecond
		k := NewKernel()
		k.EnableSharding(3, eps)
		var log strings.Builder
		pt := NewPort[string](k, 0, "in", eps)
		for i := 0; i < 2; i++ {
			i := i
			// Higher shard id gets the LOWER lid: delivery order must follow
			// lids, not shard ids or spawn order.
			k.SpawnOn(1+i, uint64(20-i), fmt.Sprintf("sender-%d", i), func(p *Proc) {
				p.Sleep(10 * Microsecond)
				pt.Send(p, p.Name())
			})
		}
		k.SpawnOn(0, 1, "recv", func(p *Proc) {
			if parallel {
				k.Parallelize()
				p.Sleep(0)
			}
			a := pt.Recv(p)
			b := pt.Recv(p)
			fmt.Fprintf(&log, "%s then %s at %v\n", a, b, p.Now())
			if parallel {
				p.Sequentialize()
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		k.Shutdown()
		return log.String()
	}
	seq := run(false)
	par := run(true)
	// sender-1 has the lower logical id (19 < 20) even though sender-0 was
	// spawned first and sits on a lower shard.
	want := "sender-1 then sender-0 at 11.00us\n"
	if par != want {
		t.Fatalf("parallel delivery order: got %q want %q", par, want)
	}
	if seq != par {
		t.Fatalf("modes disagree: sequential %q parallel %q", seq, par)
	}
}

// TestCallAt covers the kernel-context timer: ordering against process
// events and chained re-arming.
func TestCallAt(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.Spawn("driver", func(p *Proc) {
		var tick func()
		n := 0
		tick = func() {
			fired = append(fired, p.Now())
			n++
			if n < 3 {
				p.CallAt(p.Now()+Time(10*Microsecond), tick)
			}
		}
		p.CallAt(p.Now()+Time(10*Microsecond), tick)
		p.Sleep(Duration(100 * Microsecond))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if len(fired) != 3 {
		t.Fatalf("expected 3 chained firings, got %d", len(fired))
	}
}

// TestPortHopValidation ensures cross-shard sends below the lookahead are
// rejected loudly rather than corrupting window isolation.
func TestPortHopValidation(t *testing.T) {
	k := NewKernel()
	k.EnableSharding(2, 10*Microsecond)
	pt := NewPort[int](k, 1, "short-hop", 1*Microsecond)
	k.SpawnOn(0, 1, "sender", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("cross-shard send below lookahead did not panic")
			}
			panic(killToken{p}) // unwind cleanly
		}()
		pt.Send(p, 1)
	})
	_ = k.Run()
	k.Shutdown()
}

// TestParallelDeadline verifies RunUntil cuts parallel windows at the
// deadline barrier and the run can resume.
func TestParallelDeadline(t *testing.T) {
	k := NewKernel()
	k.EnableSharding(2, 2*Microsecond)
	ticks := 0
	k.SpawnOn(1, 2, "ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(10 * Microsecond)
			ticks++
		}
	})
	k.SpawnOn(0, 1, "main", func(p *Proc) {
		k.Parallelize()
		p.Sleep(200 * Microsecond)
	})
	if err := k.RunUntil(Time(35 * Microsecond)); err != nil {
		t.Fatal(err)
	}
	if ticks != 3 {
		t.Fatalf("expected 3 ticks by 35us, got %d", ticks)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("expected 10 ticks after resume, got %d", ticks)
	}
	k.Shutdown()
}

// TestParallelDeadlock verifies the deadlock detector still fires when every
// shard is idle with parked processes.
func TestParallelDeadlock(t *testing.T) {
	k := NewKernel()
	k.EnableSharding(2, 2*Microsecond)
	pt := NewPort[int](k, 1, "never", 2*Microsecond)
	k.SpawnOn(1, 2, "waiter", func(p *Proc) {
		pt.Recv(p)
	})
	k.SpawnOn(0, 1, "main", func(p *Proc) {
		k.Parallelize()
		p.Sleep(10 * Microsecond)
	})
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Parked) != 1 || de.Parked[0] != "waiter" {
		t.Fatalf("unexpected parked set %v", de.Parked)
	}
	k.Shutdown()
}

// TestParallelizeValidation ensures the lid contract is enforced up front.
func TestParallelizeValidation(t *testing.T) {
	k := NewKernel()
	k.EnableSharding(2, 2*Microsecond)
	k.SpawnOn(1, 0, "anon", func(p *Proc) { p.Sleep(Microsecond) })
	k.SpawnOn(0, 1, "main", func(p *Proc) {
		k.Parallelize()
		p.Sleep(Microsecond)
	})
	defer k.Shutdown()
	defer func() {
		if recover() == nil {
			t.Error("Parallelize with an unlabelled live process did not panic")
		}
	}()
	_ = k.Run()
}
