package sim_test

import (
	"fmt"

	"cronus/internal/sim"
)

// Two processes exchange a value through a mailbox; virtual time only
// advances through explicit costs, so the output is exactly reproducible.
func Example() {
	k := sim.NewKernel()
	mb := sim.NewMailbox[string](k, "requests")
	k.Spawn("device", func(p *sim.Proc) {
		req, _ := mb.Recv(p)
		p.Sleep(500 * sim.Microsecond) // the device works
		fmt.Printf("[%v] device finished %q\n", p.Now(), req)
	})
	k.Spawn("driver", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond) // driver setup
		mb.Send("kernel-launch")
		fmt.Printf("[%v] driver submitted\n", p.Now())
	})
	if err := k.Run(); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// [100.00us] driver submitted
	// [600.00us] device finished "kernel-launch"
}

// The processor-sharing engine models spatial sharing: two jobs that fit
// the capacity together run fully in parallel.
func ExamplePSEngine() {
	k := sim.NewKernel()
	gpu := sim.NewPSEngine(k, "gpu", 46)
	for i := 0; i < 2; i++ {
		k.Spawn(fmt.Sprintf("tenant-%d", i), func(p *sim.Proc) {
			gpu.Run(p, 20, sim.Duration(1*sim.Millisecond)) // 20 SMs each
			fmt.Printf("tenant done at %v\n", p.Now())
		})
	}
	if err := k.Run(); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// tenant done at 1000.00us
	// tenant done at 1000.00us
}
