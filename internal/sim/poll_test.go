package sim

import "testing"

func TestNextPollInstant(t *testing.T) {
	cases := []struct {
		first  Time
		period Duration
		now    Time
		want   Time
	}{
		{100, 480, 0, 100},    // before the first read
		{100, 480, 100, 100},  // exactly at the first read
		{100, 480, 101, 580},  // just past: next grid point
		{100, 480, 580, 580},  // exactly on a grid point
		{100, 480, 581, 1060}, // just past a grid point
		{0, 400, 799, 800},
		{0, 400, 800, 800},
	}
	for _, c := range cases {
		if got := NextPollInstant(c.first, c.period, c.now); got != c.want {
			t.Fatalf("NextPollInstant(%d, %d, %d) = %d, want %d", c.first, c.period, c.now, got, c.want)
		}
	}
}

func TestCondBroadcastWakesAllInOrder(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	k.Spawn("caster", func(p *Proc) {
		p.Sleep(10)
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("wake order %v, want [a b c]", order)
	}
}

func TestCondIsEdgeTriggered(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	woke := false
	k.Spawn("caster", func(p *Proc) {
		c.Broadcast() // no waiters: lost, by design
	})
	k.Spawn("late", func(p *Proc) {
		p.Sleep(5)
		done := false
		k.Spawn("second-cast", func(q *Proc) {
			q.Sleep(5)
			done = true
			c.Broadcast()
		})
		c.Wait(p)
		if !done {
			t.Error("woken by a broadcast that predates the wait")
		}
		woke = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Fatal("waiter never woke")
	}
}

func TestCondKilledWaiterIsDropped(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	var victim *Proc
	reached := false
	k.Spawn("victim", func(p *Proc) {
		victim = p
		c.Wait(p)
		reached = true // must not run: the proc dies parked
	})
	k.Spawn("killer", func(p *Proc) {
		p.Sleep(10)
		k.Kill(victim)
		p.Sleep(10)
		c.Broadcast() // must not touch the dead proc
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("killed waiter resumed past Wait")
	}
	if len(c.waiters) != 0 {
		t.Fatalf("dead waiter still queued: %d", len(c.waiters))
	}
}
