package sim

import (
	"errors"
	"runtime"
	"testing"
	"testing/quick"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel()
	var end Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100)
		p.Sleep(250)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 350 {
		t.Fatalf("end time = %d, want 350", end)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var order []string
		k.Spawn("a", func(p *Proc) {
			p.Sleep(10)
			order = append(order, "a10")
			p.Sleep(20) // at 30
			order = append(order, "a30")
		})
		k.Spawn("b", func(p *Proc) {
			p.Sleep(20)
			order = append(order, "b20")
			p.Sleep(20) // at 40
			order = append(order, "b40")
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	want := []string{"a10", "b20", "a30", "b40"}
	for trial := 0; trial < 20; trial++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("order %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: order %v, want %v", trial, got, want)
			}
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			p.Sleep(5)
			order = append(order, i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not FIFO", order)
		}
	}
}

func TestMailboxBlocksAndDelivers(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[int](k, "mb")
	var got []int
	var recvTime Time
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, ok := mb.Recv(p)
			if !ok {
				t.Errorf("mailbox closed early")
				return
			}
			got = append(got, v)
		}
		recvTime = p.Now()
	})
	k.Spawn("send", func(p *Proc) {
		p.Sleep(50)
		mb.Send(1)
		p.Sleep(50)
		mb.Send(2)
		mb.Send(3)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	if recvTime != 100 {
		t.Fatalf("recv finished at %d, want 100", recvTime)
	}
}

func TestMailboxCloseReleasesReceiver(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[int](k, "mb")
	closedSeen := false
	k.Spawn("recv", func(p *Proc) {
		_, ok := mb.Recv(p)
		closedSeen = !ok
	})
	k.Spawn("close", func(p *Proc) {
		p.Sleep(10)
		mb.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !closedSeen {
		t.Fatal("receiver did not observe close")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[int](k, "mb")
	k.Spawn("stuck", func(p *Proc) {
		mb.Recv(p)
	})
	err := k.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Parked) != 1 || dl.Parked[0] != "stuck" {
		t.Fatalf("parked = %v", dl.Parked)
	}
}

func TestPanicSurfacesAsError(t *testing.T) {
	k := NewKernel()
	k.Spawn("bad", func(p *Proc) {
		p.Sleep(1)
		panic("boom")
	})
	err := k.Run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if pe.Proc != "bad" || pe.Value != "boom" {
		t.Fatalf("panic error = %+v", pe)
	}
}

func TestResourceFIFOAndCapacity(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "dma", 2)
	var order []string
	use := func(name string, at Time, hold Duration) {
		k.Spawn(name, func(p *Proc) {
			p.Sleep(Duration(at))
			r.Acquire(p, 1)
			order = append(order, name+"+")
			p.Sleep(hold)
			r.Release(1)
			order = append(order, name+"-")
		})
	}
	use("a", 0, 100)
	use("b", 0, 100)
	use("c", 10, 10) // must wait for a or b
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// a and b release at t=100; their timers were queued before c's grant
	// wake, so both releases run before c enters.
	want := []string{"a+", "b+", "a-", "b-", "c+", "c-"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestResourceOversizedRequestClamped(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "r", 4)
	done := false
	k.Spawn("big", func(p *Proc) {
		r.Acquire(p, 100) // clamped to 4
		r.Release(100)
		done = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("oversized acquire deadlocked")
	}
}

func TestKillParkedProcess(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[int](k, "mb")
	var victim *Proc
	victim = k.Spawn("victim", func(p *Proc) {
		mb.Recv(p)
		t.Error("victim should never receive")
	})
	k.Spawn("killer", func(p *Proc) {
		p.Sleep(10)
		k.Kill(victim)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !victim.Dead() {
		t.Fatal("victim still alive")
	}
}

func TestKillSleepingProcess(t *testing.T) {
	k := NewKernel()
	reached := false
	victim := k.Spawn("victim", func(p *Proc) {
		p.Sleep(1000)
		reached = true
	})
	k.Spawn("killer", func(p *Proc) {
		p.Sleep(10)
		k.Kill(victim)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("victim ran past its kill point")
	}
}

func TestSignalBroadcast(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	count := 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *Proc) {
			s.Wait(p)
			count++
		})
	}
	k.Spawn("fire", func(p *Proc) {
		p.Sleep(10)
		s.Fire()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k)
	var doneAt Time
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		k.Spawn("task", func(p *Proc) {
			p.Sleep(Duration(i * 100))
			wg.Done()
		})
	}
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 300 {
		t.Fatalf("waiter released at %d, want 300", doneAt)
	}
}

func TestRunUntilResumable(t *testing.T) {
	k := NewKernel()
	ticks := 0
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(100)
			ticks++
		}
	})
	if err := k.RunUntil(450); err != nil {
		t.Fatal(err)
	}
	if ticks != 4 {
		t.Fatalf("ticks = %d at deadline 450, want 4", ticks)
	}
	if k.Now() != 450 {
		t.Fatalf("now = %d, want 450", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d after full run, want 10", ticks)
	}
}

func TestInterruptibleSleep(t *testing.T) {
	k := NewKernel()
	var interrupted bool
	var wakeAt Time
	sleeper := k.Spawn("sleeper", func(p *Proc) {
		interrupted = p.SleepInterruptible(1000)
		wakeAt = p.Now()
	})
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(300)
		k.Interrupt(sleeper)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !interrupted {
		t.Fatal("sleep not reported interrupted")
	}
	if wakeAt != 300 {
		t.Fatalf("woke at %d, want 300", wakeAt)
	}
}

func TestPSEngineSingleJobRunsAtFullSpeed(t *testing.T) {
	k := NewKernel()
	e := NewPSEngine(k, "gpu", 46)
	var took Duration
	k.Spawn("job", func(p *Proc) {
		start := p.Now()
		e.Run(p, 20, 1000)
		took = Duration(p.Now() - start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if took != 1000 {
		t.Fatalf("took %d, want 1000", took)
	}
}

func TestPSEngineParallelWithinCapacity(t *testing.T) {
	k := NewKernel()
	e := NewPSEngine(k, "gpu", 46)
	var end Time
	wg := NewWaitGroup(k)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		k.Spawn("job", func(p *Proc) {
			e.Run(p, 20, 1000) // 2*20 <= 46: no slowdown
			wg.Done()
		})
	}
	k.Spawn("wait", func(p *Proc) {
		wg.Wait(p)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 1000 {
		t.Fatalf("end = %d, want 1000 (full parallelism)", end)
	}
}

func TestPSEngineOversubscriptionSlowdown(t *testing.T) {
	k := NewKernel()
	e := NewPSEngine(k, "gpu", 40)
	var end Time
	wg := NewWaitGroup(k)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		k.Spawn("job", func(p *Proc) {
			e.Run(p, 20, 1000) // 4*20 = 80 > 40: factor 0.5
			wg.Done()
		})
	}
	k.Spawn("wait", func(p *Proc) {
		wg.Wait(p)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end < 1990 || end > 2010 {
		t.Fatalf("end = %d, want ~2000 (2x slowdown)", end)
	}
}

func TestPSEngineStaggeredArrival(t *testing.T) {
	k := NewKernel()
	e := NewPSEngine(k, "gpu", 10)
	var firstEnd, secondEnd Time
	k.Spawn("first", func(p *Proc) {
		e.Run(p, 10, 1000)
		firstEnd = p.Now()
	})
	k.Spawn("second", func(p *Proc) {
		p.Sleep(500)
		e.Run(p, 10, 1000)
		secondEnd = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// First runs alone 0-500 (500 work done), then shares at 0.5x.
	// Remaining 500 work takes 1000: first ends at 1500.
	if firstEnd < 1495 || firstEnd > 1505 {
		t.Fatalf("first end = %d, want ~1500", firstEnd)
	}
	// Second: 500 done by 1500 (rate 0.5), then alone: 500 more by 2000.
	if secondEnd < 1995 || secondEnd > 2005 {
		t.Fatalf("second end = %d, want ~2000", secondEnd)
	}
}

func TestPSEngineKilledJobLeavesEngine(t *testing.T) {
	k := NewKernel()
	e := NewPSEngine(k, "gpu", 10)
	var survivorEnd Time
	victim := k.Spawn("victim", func(p *Proc) {
		e.Run(p, 10, 1_000_000)
	})
	k.Spawn("survivor", func(p *Proc) {
		e.Run(p, 10, 1000)
		survivorEnd = p.Now()
	})
	k.Spawn("killer", func(p *Proc) {
		p.Sleep(200)
		k.Kill(victim)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Shared 0-200 (100 units done), alone afterwards: 900 more by 1100.
	if survivorEnd < 1095 || survivorEnd > 1105 {
		t.Fatalf("survivor end = %d, want ~1100", survivorEnd)
	}
	if e.Active() != 0 {
		t.Fatalf("engine still has %d active jobs", e.Active())
	}
}

// Property: total virtual time for n equal jobs with total demand exceeding
// capacity scales like n*demand/capacity, conservation of work.
func TestPSEngineWorkConservationProperty(t *testing.T) {
	f := func(nJobs uint8, demandSeed uint8) bool {
		n := int(nJobs%6) + 1
		demand := float64(demandSeed%30) + 10 // 10..39
		cap := 40.0
		k := NewKernel()
		e := NewPSEngine(k, "gpu", cap)
		work := Duration(10_000)
		var end Time
		wg := NewWaitGroup(k)
		for i := 0; i < n; i++ {
			wg.Add(1)
			k.Spawn("job", func(p *Proc) {
				e.Run(p, demand, work)
				wg.Done()
			})
		}
		k.Spawn("wait", func(p *Proc) {
			wg.Wait(p)
			end = p.Now()
		})
		if err := k.Run(); err != nil {
			return false
		}
		total := demand * float64(n)
		expect := float64(work)
		if total > cap {
			expect = float64(work) * total / cap
		}
		got := float64(end)
		return got > expect*0.999 && got < expect*1.001+float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelHelpers(t *testing.T) {
	c := DefaultCosts()
	if c.Memcpy(8000) != Duration(1000) {
		t.Fatalf("memcpy(8000) = %v", c.Memcpy(8000))
	}
	if c.DMA(0) != c.PCIeLatency {
		t.Fatalf("DMA(0) = %v", c.DMA(0))
	}
	if c.SyncRPCSwitch() != 4*c.ContextSwitchS2 {
		t.Fatalf("sync RPC switch = %v", c.SyncRPCSwitch())
	}
	if c.Encrypt(1000) <= c.AESFixed {
		t.Fatal("encrypt must include per-byte cost")
	}
	if c.MOSRestart >= c.MachineReboot/100 {
		t.Fatal("mOS restart must be orders of magnitude cheaper than reboot")
	}
}

func TestShutdownUnwindsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		k := NewKernel()
		mb := NewMailbox[int](k, "never")
		k.Spawn("main", func(p *Proc) {
			k.Stop()
		})
		k.Spawn("poller", func(p *Proc) {
			for {
				p.Sleep(100)
			}
		})
		k.Spawn("parked", func(p *Proc) {
			mb.Recv(p)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		k.Shutdown()
	}
	// Give the runtime a moment to reap exiting goroutines.
	for i := 0; i < 100 && runtime.NumGoroutine() > before+3; i++ {
		runtime.Gosched()
	}
	after := runtime.NumGoroutine()
	if after > before+3 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

func TestShutdownUnwindsBlockingDefers(t *testing.T) {
	// A process whose deferred cleanup itself blocks (like closing a
	// stream) must still terminate under Shutdown.
	before := runtime.NumGoroutine()
	k := NewKernel()
	mb := NewMailbox[int](k, "mb")
	cleanupRan := false
	k.Spawn("main", func(p *Proc) {
		p.Sleep(100) // let the worker park first
		k.Stop()
	})
	k.Spawn("worker", func(p *Proc) {
		defer func() {
			cleanupRan = true
			defer func() { recover() }() // the blocking op re-panics killToken
			mb.Recv(p)                   // blocks inside the defer
			t.Error("blocking defer returned normally")
		}()
		mb.Recv(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	for i := 0; i < 100 && runtime.NumGoroutine() > before+1; i++ {
		runtime.Gosched()
	}
	if !cleanupRan {
		t.Fatal("deferred cleanup never ran")
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, g)
	}
}
