package rodinia

import (
	"fmt"
	"math/rand"

	"cronus/internal/accel"
	"cronus/internal/gpu"
	"cronus/internal/sim"
)

// Benchmark is one Rodinia workload.
type Benchmark struct {
	Name    string
	Kernels []string
	// Run executes one full benchmark pass through ops.
	Run func(p *sim.Proc, ops accel.CUDA) error
}

// Cubin returns the module image for a benchmark (plus the std kernels the
// orchestration uses).
func (b Benchmark) Cubin() []byte {
	names := append([]string{}, b.Kernels...)
	return gpu.BuildCubin(names...)
}

func randFloats(seed int64, n int) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32()
	}
	return out
}

func allocUpload(p *sim.Proc, ops accel.CUDA, data []float32) (uint64, error) {
	ptr, err := ops.MemAlloc(p, uint64(len(data)*4))
	if err != nil {
		return 0, err
	}
	return ptr, ops.HtoD(p, ptr, gpu.PackF32(data))
}

// All returns the eight Figure 7 benchmarks.
func All() []Benchmark {
	return []Benchmark{
		Backprop(), BFS(), Gaussian(), Hotspot(),
		KMeans(), NN(), NW(), Pathfinder(),
	}
}

// ByName finds a benchmark in the extended suite.
func ByName(name string) (Benchmark, error) {
	for _, b := range AllExtended() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("rodinia: no benchmark %q", name)
}

// Backprop: a two-layer neural network sweep — matmul-heavy with a handful
// of launches (GPU-bound; TEE overhead should vanish here).
func Backprop() Benchmark {
	return Benchmark{
		Name:    "backprop",
		Kernels: []string{"bp_layerforward", "bp_adjust"},
		Run: func(p *sim.Proc, ops accel.CUDA) error {
			const in, hid, out, batch = 256, 128, 64, 32
			w1, err := allocUpload(p, ops, randFloats(1, in*hid))
			if err != nil {
				return err
			}
			w2, err := allocUpload(p, ops, randFloats(2, hid*out))
			if err != nil {
				return err
			}
			x, err := allocUpload(p, ops, randFloats(3, batch*in))
			if err != nil {
				return err
			}
			h, err := ops.MemAlloc(p, batch*hid*4)
			if err != nil {
				return err
			}
			y, err := ops.MemAlloc(p, batch*out*4)
			if err != nil {
				return err
			}
			for iter := 0; iter < 4; iter++ {
				if err := ops.Launch(p, "bp_layerforward", gpu.Dim{1, 1, 1}, x, w1, h, batch, hid, in); err != nil {
					return err
				}
				if err := ops.Launch(p, "bp_layerforward", gpu.Dim{1, 1, 1}, h, w2, y, batch, out, hid); err != nil {
					return err
				}
				// Weight adjustment sweep (the bpnn_adjust pass).
				if err := ops.Launch(p, "bp_adjust", gpu.Dim{hid * out, 1, 1}, w2, w2, gpu.FloatBits(-1e-4)); err != nil {
					return err
				}
			}
			if _, err := ops.DtoH(p, y, batch*out*4); err != nil {
				return err
			}
			return ops.Sync(p)
		},
	}
}

// BFS: level-synchronous graph traversal — a launch plus a host readback
// per level (sync-point heavy).
func BFS() Benchmark {
	return Benchmark{
		Name:    "bfs",
		Kernels: []string{"bfs_step"},
		Run: func(p *sim.Proc, ops accel.CUDA) error {
			const nodes = 2048
			const degree = 4
			rng := rand.New(rand.NewSource(7))
			idx := make([]float32, nodes+1)
			var dsts []float32
			for v := 0; v < nodes; v++ {
				idx[v] = float32(len(dsts))
				for d := 0; d < degree; d++ {
					dsts = append(dsts, float32(rng.Intn(nodes)))
				}
			}
			idx[nodes] = float32(len(dsts))
			gIdx, err := allocUpload(p, ops, idx)
			if err != nil {
				return err
			}
			gDst, err := allocUpload(p, ops, dsts)
			if err != nil {
				return err
			}
			cost := make([]float32, nodes)
			frontier := make([]float32, nodes)
			for i := range cost {
				cost[i] = -1
			}
			cost[0] = 0
			frontier[0] = 1
			gCost, err := allocUpload(p, ops, cost)
			if err != nil {
				return err
			}
			gFront, err := allocUpload(p, ops, frontier)
			if err != nil {
				return err
			}
			gNext, err := ops.MemAlloc(p, nodes*4)
			if err != nil {
				return err
			}
			gFlag, err := ops.MemAlloc(p, 4)
			if err != nil {
				return err
			}
			for level := 0; level < 32; level++ {
				if err := ops.HtoD(p, gFlag, gpu.PackF32([]float32{0})); err != nil {
					return err
				}
				if err := ops.Launch(p, "bfs_step", gpu.Dim{nodes, 1, 1},
					gIdx, gDst, gCost, gFront, gNext, gFlag); err != nil {
					return err
				}
				gFront, gNext = gNext, gFront
				// Host checks the continuation flag every level: the
				// per-level synchronization that hurts lock-step RPC.
				flag, err := ops.DtoH(p, gFlag, 4)
				if err != nil {
					return err
				}
				if gpu.UnpackF32(flag)[0] == 0 {
					break
				}
			}
			return ops.Sync(p)
		},
	}
}

// Gaussian: elimination with two tiny launches per column — the
// launch-count-heaviest workload (where HIX is worst in Figure 7).
func Gaussian() Benchmark {
	return Benchmark{
		Name:    "gaussian",
		Kernels: []string{"gaussian_fan1", "gaussian_fan2"},
		Run: func(p *sim.Proc, ops accel.CUDA) error {
			const size = 96
			a, err := allocUpload(p, ops, randFloats(11, size*size))
			if err != nil {
				return err
			}
			b, err := allocUpload(p, ops, randFloats(12, size))
			if err != nil {
				return err
			}
			m, err := ops.MemAlloc(p, size*size*4)
			if err != nil {
				return err
			}
			for col := 0; col < size-1; col++ {
				if err := ops.Launch(p, "gaussian_fan1", gpu.Dim{size - col, 1, 1}, a, m, size, uint64(col)); err != nil {
					return err
				}
				if err := ops.Launch(p, "gaussian_fan2", gpu.Dim{(size - col) * size, 1, 1}, a, b, m, size, uint64(col)); err != nil {
					return err
				}
			}
			if _, err := ops.DtoH(p, b, size*4); err != nil {
				return err
			}
			return ops.Sync(p)
		},
	}
}

// Hotspot: thermal stencil, one launch per timestep with ping-pong buffers.
func Hotspot() Benchmark {
	return Benchmark{
		Name:    "hotspot",
		Kernels: []string{"hotspot_step"},
		Run: func(p *sim.Proc, ops accel.CUDA) error {
			const rows, cols, steps = 96, 96, 24
			tin, err := allocUpload(p, ops, randFloats(21, rows*cols))
			if err != nil {
				return err
			}
			tout, err := ops.MemAlloc(p, rows*cols*4)
			if err != nil {
				return err
			}
			power, err := allocUpload(p, ops, randFloats(22, rows*cols))
			if err != nil {
				return err
			}
			for s := 0; s < steps; s++ {
				if err := ops.Launch(p, "hotspot_step", gpu.Dim{rows * cols, 1, 1},
					tin, tout, power, rows, cols); err != nil {
					return err
				}
				tin, tout = tout, tin
			}
			if _, err := ops.DtoH(p, tin, rows*cols*4); err != nil {
				return err
			}
			return ops.Sync(p)
		},
	}
}

// KMeans: clustering iterations with a membership readback per round.
func KMeans() Benchmark {
	return Benchmark{
		Name:    "kmeans",
		Kernels: []string{"kmeans_assign", "kmeans_update"},
		Run: func(p *sim.Proc, ops accel.CUDA) error {
			const n, k, dims, rounds = 2048, 8, 16, 6
			pts, err := allocUpload(p, ops, randFloats(31, n*dims))
			if err != nil {
				return err
			}
			cents, err := allocUpload(p, ops, randFloats(32, k*dims))
			if err != nil {
				return err
			}
			mem, err := ops.MemAlloc(p, n*4)
			if err != nil {
				return err
			}
			for r := 0; r < rounds; r++ {
				if err := ops.Launch(p, "kmeans_assign", gpu.Dim{n, 1, 1}, pts, cents, mem, n, k, dims); err != nil {
					return err
				}
				if err := ops.Launch(p, "kmeans_update", gpu.Dim{k, 1, 1}, pts, cents, mem, n, k, dims); err != nil {
					return err
				}
				if _, err := ops.DtoH(p, cents, k*dims*4); err != nil {
					return err
				}
			}
			return ops.Sync(p)
		},
	}
}

// NN: nearest-neighbor search — one large upload, one big kernel, one
// result download (bandwidth-bound).
func NN() Benchmark {
	return Benchmark{
		Name:    "nn",
		Kernels: []string{"nn_dist"},
		Run: func(p *sim.Proc, ops accel.CUDA) error {
			const n, dims = 16384, 8
			recs, err := allocUpload(p, ops, randFloats(41, n*dims))
			if err != nil {
				return err
			}
			q, err := allocUpload(p, ops, randFloats(42, dims))
			if err != nil {
				return err
			}
			out, err := ops.MemAlloc(p, n*4)
			if err != nil {
				return err
			}
			if err := ops.Launch(p, "nn_dist", gpu.Dim{n, 1, 1}, recs, q, out, n, dims); err != nil {
				return err
			}
			dist, err := ops.DtoH(p, out, n*4)
			if err != nil {
				return err
			}
			// Host-side top-k selection on the returned distances.
			_ = dist
			return ops.Sync(p)
		},
	}
}

// NW: Needleman-Wunsch — one launch per anti-diagonal (2·size launches).
func NW() Benchmark {
	return Benchmark{
		Name:    "nw",
		Kernels: []string{"nw_diag"},
		Run: func(p *sim.Proc, ops accel.CUDA) error {
			const size = 128
			sc, err := ops.MemAlloc(p, (size+1)*(size+1)*4)
			if err != nil {
				return err
			}
			init := make([]float32, (size+1)*(size+1))
			for i := 0; i <= size; i++ {
				init[i*(size+1)] = float32(-i)
				init[i] = float32(-i)
			}
			if err := ops.HtoD(p, sc, gpu.PackF32(init)); err != nil {
				return err
			}
			ref, err := allocUpload(p, ops, randFloats(51, size*size))
			if err != nil {
				return err
			}
			for diag := 2; diag <= 2*size; diag++ {
				if err := ops.Launch(p, "nw_diag", gpu.Dim{size, 1, 1},
					sc, ref, size, uint64(diag), gpu.FloatBits(1.0)); err != nil {
					return err
				}
			}
			if _, err := ops.DtoH(p, sc, 4*(size+1)); err != nil {
				return err
			}
			return ops.Sync(p)
		},
	}
}

// Pathfinder: DP over rows, one launch per row with ping-pong buffers.
func Pathfinder() Benchmark {
	return Benchmark{
		Name:    "pathfinder",
		Kernels: []string{"pathfinder_row"},
		Run: func(p *sim.Proc, ops accel.CUDA) error {
			const rows, cols = 64, 1024
			wall, err := allocUpload(p, ops, randFloats(61, rows*cols))
			if err != nil {
				return err
			}
			prev, err := ops.MemAlloc(p, cols*4)
			if err != nil {
				return err
			}
			next, err := ops.MemAlloc(p, cols*4)
			if err != nil {
				return err
			}
			for r := 1; r < rows; r++ {
				if err := ops.Launch(p, "pathfinder_row", gpu.Dim{cols, 1, 1},
					wall, prev, next, cols, uint64(r)); err != nil {
					return err
				}
				prev, next = next, prev
			}
			if _, err := ops.DtoH(p, prev, cols*4); err != nil {
				return err
			}
			return ops.Sync(p)
		},
	}
}
