// Package rodinia reproduces the Rodinia GPU benchmark suite used in the
// paper's microbenchmark evaluation (Figure 7): eight workloads with the
// launch/copy patterns that make them interesting for TEE overhead studies —
// from single-big-kernel (nn) to hundreds of tiny launches with host
// synchronization every step (gaussian, bfs, nw), which is where lock-step
// encrypted RPC (HIX) collapses and streaming RPC does not.
//
// Kernels perform real computations on device memory; grids and iteration
// counts are scaled to simulation-friendly sizes.
package rodinia

import (
	"math"

	"cronus/internal/gpu"
	"cronus/internal/sim"
)

// rodCost models a kernel's duration as fixed + perElem·grid ns. The
// magnitudes are calibrated to the kernel times of the *full-size* Rodinia
// datasets the paper runs (hundreds of microseconds to milliseconds), while
// the functional computation runs on scaled-down data — the documented
// substitution that keeps the simulation laptop-sized without distorting
// the relative overheads of the four systems.
func rodCost(sms float64, fixed sim.Duration, perElem float64, demandFrac float64) func(gpu.Dim, []uint64) gpu.LaunchCost {
	return func(g gpu.Dim, _ []uint64) gpu.LaunchCost {
		return gpu.LaunchCost{
			Work:     fixed + sim.Duration(perElem*float64(g.Elems())),
			SMDemand: sms * demandFrac,
		}
	}
}

// RegisterKernels installs the Rodinia kernels (including the extended
// suite's) for a device with the given SM count. Call once per process
// before running benchmarks.
func RegisterKernels(sms float64) {
	RegisterExtraKernels(sms)
	// bfs_step: frontier relaxation. args: edgesIdx, edgesDst, cost,
	// frontier, next, changedFlag; grid [nodes].
	gpu.Register(&gpu.Kernel{
		Name: "bfs_step",
		Cost: rodCost(sms, 180*sim.Microsecond, 30, 0.5),
		Func: func(e *gpu.Exec) error {
			n := e.Grid.Elems()
			idx, err := e.Bytes(e.Arg(0), (n+1)*4)
			if err != nil {
				return err
			}
			// Edge list length from the index array's last entry.
			fi := gpu.F32(idx)
			nEdges := int(fi.Get(n))
			dst, err := e.Bytes(e.Arg(1), nEdges*4)
			if err != nil {
				return err
			}
			cost, err := e.Bytes(e.Arg(2), n*4)
			if err != nil {
				return err
			}
			frontier, err := e.Bytes(e.Arg(3), n*4)
			if err != nil {
				return err
			}
			next, err := e.Bytes(e.Arg(4), n*4)
			if err != nil {
				return err
			}
			flag, err := e.Bytes(e.Arg(5), 4)
			if err != nil {
				return err
			}
			fd, fc, ff, fn := gpu.F32(dst), gpu.F32(cost), gpu.F32(frontier), gpu.F32(next)
			changed := false
			for v := 0; v < n; v++ {
				fn.Set(v, 0)
			}
			for v := 0; v < n; v++ {
				if ff.Get(v) != 1 {
					continue
				}
				start, end := int(fi.Get(v)), int(fi.Get(v+1))
				for ei := start; ei < end && ei < nEdges; ei++ {
					w := int(fd.Get(ei))
					if w >= 0 && w < n && fc.Get(w) < 0 {
						fc.Set(w, fc.Get(v)+1)
						fn.Set(w, 1)
						changed = true
					}
				}
			}
			if changed {
				gpu.F32(flag).Set(0, 1)
			}
			return nil
		},
	})

	// gaussian_fan1: compute multipliers column i. args: a, m, size, col.
	gpu.Register(&gpu.Kernel{
		Name: "gaussian_fan1",
		Cost: rodCost(sms, 25*sim.Microsecond, 0.5, 0.3),
		Func: func(e *gpu.Exec) error {
			size := int(e.Arg(2))
			col := int(e.Arg(3))
			ab, err := e.Bytes(e.Arg(0), size*size*4)
			if err != nil {
				return err
			}
			mb, err := e.Bytes(e.Arg(1), size*size*4)
			if err != nil {
				return err
			}
			a, m := gpu.F32(ab), gpu.F32(mb)
			pivot := a.Get(col*size + col)
			if pivot == 0 {
				pivot = 1e-6
			}
			for r := col + 1; r < size; r++ {
				m.Set(r*size+col, a.Get(r*size+col)/pivot)
			}
			return nil
		},
	})

	// gaussian_fan2: eliminate below the pivot. args: a, b, m, size, col.
	gpu.Register(&gpu.Kernel{
		Name: "gaussian_fan2",
		Cost: rodCost(sms, 60*sim.Microsecond, 1.0, 0.6),
		Func: func(e *gpu.Exec) error {
			size := int(e.Arg(3))
			col := int(e.Arg(4))
			ab, err := e.Bytes(e.Arg(0), size*size*4)
			if err != nil {
				return err
			}
			bb, err := e.Bytes(e.Arg(1), size*4)
			if err != nil {
				return err
			}
			mb, err := e.Bytes(e.Arg(2), size*size*4)
			if err != nil {
				return err
			}
			a, bv, m := gpu.F32(ab), gpu.F32(bb), gpu.F32(mb)
			for r := col + 1; r < size; r++ {
				mult := m.Get(r*size + col)
				if mult == 0 {
					continue
				}
				for c := col; c < size; c++ {
					a.Set(r*size+c, a.Get(r*size+c)-mult*a.Get(col*size+c))
				}
				bv.Set(r, bv.Get(r)-mult*bv.Get(col))
			}
			return nil
		},
	})

	// hotspot_step: 5-point stencil thermal step. args: tin, tout, power,
	// rows, cols.
	gpu.Register(&gpu.Kernel{
		Name: "hotspot_step",
		Cost: rodCost(sms, 90*sim.Microsecond, 10, 0.8),
		Func: func(e *gpu.Exec) error {
			rows, cols := int(e.Arg(3)), int(e.Arg(4))
			n := rows * cols
			tin, err := e.Bytes(e.Arg(0), n*4)
			if err != nil {
				return err
			}
			tout, err := e.Bytes(e.Arg(1), n*4)
			if err != nil {
				return err
			}
			pow, err := e.Bytes(e.Arg(2), n*4)
			if err != nil {
				return err
			}
			ti, to, pw := gpu.F32(tin), gpu.F32(tout), gpu.F32(pow)
			at := func(r, c int) float32 {
				if r < 0 {
					r = 0
				}
				if r >= rows {
					r = rows - 1
				}
				if c < 0 {
					c = 0
				}
				if c >= cols {
					c = cols - 1
				}
				return ti.Get(r*cols + c)
			}
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					center := at(r, c)
					delta := 0.2*(at(r-1, c)+at(r+1, c)+at(r, c-1)+at(r, c+1)-4*center) + 0.05*pw.Get(r*cols+c)
					to.Set(r*cols+c, center+delta)
				}
			}
			return nil
		},
	})

	// kmeans_assign: assign points to nearest centroid. args: pts, cents,
	// membership, n, k, dims.
	gpu.Register(&gpu.Kernel{
		Name: "kmeans_assign",
		Cost: rodCost(sms, 200*sim.Microsecond, 40, 0.8),
		Func: func(e *gpu.Exec) error {
			n, k, dims := int(e.Arg(3)), int(e.Arg(4)), int(e.Arg(5))
			pts, err := e.Bytes(e.Arg(0), n*dims*4)
			if err != nil {
				return err
			}
			cents, err := e.Bytes(e.Arg(1), k*dims*4)
			if err != nil {
				return err
			}
			mem, err := e.Bytes(e.Arg(2), n*4)
			if err != nil {
				return err
			}
			fp, fc, fm := gpu.F32(pts), gpu.F32(cents), gpu.F32(mem)
			for i := 0; i < n; i++ {
				best, bestD := 0, float32(math.MaxFloat32)
				for c := 0; c < k; c++ {
					var d float32
					for j := 0; j < dims; j++ {
						diff := fp.Get(i*dims+j) - fc.Get(c*dims+j)
						d += diff * diff
					}
					if d < bestD {
						bestD, best = d, c
					}
				}
				fm.Set(i, float32(best))
			}
			return nil
		},
	})

	// kmeans_update: recompute centroids. args: pts, cents, membership,
	// n, k, dims.
	gpu.Register(&gpu.Kernel{
		Name: "kmeans_update",
		Cost: rodCost(sms, 50*sim.Microsecond, 2, 0.5),
		Func: func(e *gpu.Exec) error {
			n, k, dims := int(e.Arg(3)), int(e.Arg(4)), int(e.Arg(5))
			pts, err := e.Bytes(e.Arg(0), n*dims*4)
			if err != nil {
				return err
			}
			cents, err := e.Bytes(e.Arg(1), k*dims*4)
			if err != nil {
				return err
			}
			mem, err := e.Bytes(e.Arg(2), n*4)
			if err != nil {
				return err
			}
			fp, fc, fm := gpu.F32(pts), gpu.F32(cents), gpu.F32(mem)
			counts := make([]float32, k)
			sums := make([]float32, k*dims)
			for i := 0; i < n; i++ {
				c := int(fm.Get(i))
				if c < 0 || c >= k {
					continue
				}
				counts[c]++
				for j := 0; j < dims; j++ {
					sums[c*dims+j] += fp.Get(i*dims + j)
				}
			}
			for c := 0; c < k; c++ {
				if counts[c] == 0 {
					continue
				}
				for j := 0; j < dims; j++ {
					fc.Set(c*dims+j, sums[c*dims+j]/counts[c])
				}
			}
			return nil
		},
	})

	// nn_dist: distances from a query. args: records, query..., out, n, dims.
	gpu.Register(&gpu.Kernel{
		Name: "nn_dist",
		Cost: rodCost(sms, 100*sim.Microsecond, 20, 1.0),
		Func: func(e *gpu.Exec) error {
			n, dims := int(e.Arg(3)), int(e.Arg(4))
			recs, err := e.Bytes(e.Arg(0), n*dims*4)
			if err != nil {
				return err
			}
			q, err := e.Bytes(e.Arg(1), dims*4)
			if err != nil {
				return err
			}
			out, err := e.Bytes(e.Arg(2), n*4)
			if err != nil {
				return err
			}
			fr, fq, fo := gpu.F32(recs), gpu.F32(q), gpu.F32(out)
			for i := 0; i < n; i++ {
				var d float32
				for j := 0; j < dims; j++ {
					diff := fr.Get(i*dims+j) - fq.Get(j)
					d += diff * diff
				}
				fo.Set(i, float32(math.Sqrt(float64(d))))
			}
			return nil
		},
	})

	// nw_diag: one anti-diagonal of Needleman-Wunsch. args: score, ref,
	// size, diag, penaltyBits.
	gpu.Register(&gpu.Kernel{
		Name: "nw_diag",
		Cost: rodCost(sms, 25*sim.Microsecond, 40, 0.25),
		Func: func(e *gpu.Exec) error {
			size := int(e.Arg(2))
			diag := int(e.Arg(3))
			penalty := math.Float32frombits(uint32(e.Arg(4)))
			sc, err := e.Bytes(e.Arg(0), (size+1)*(size+1)*4)
			if err != nil {
				return err
			}
			ref, err := e.Bytes(e.Arg(1), size*size*4)
			if err != nil {
				return err
			}
			fs, fr := gpu.F32(sc), gpu.F32(ref)
			w := size + 1
			for i := 1; i <= size; i++ {
				j := diag - i
				if j < 1 || j > size {
					continue
				}
				m := fs.Get((i-1)*w+j-1) + fr.Get((i-1)*size+j-1)
				del := fs.Get((i-1)*w+j) - penalty
				ins := fs.Get(i*w+j-1) - penalty
				best := m
				if del > best {
					best = del
				}
				if ins > best {
					best = ins
				}
				fs.Set(i*w+j, best)
			}
			return nil
		},
	})

	// pathfinder_row: one DP row. args: wall, prev, next, cols, row.
	gpu.Register(&gpu.Kernel{
		Name: "pathfinder_row",
		Cost: rodCost(sms, 30*sim.Microsecond, 5, 0.3),
		Func: func(e *gpu.Exec) error {
			cols := int(e.Arg(3))
			row := int(e.Arg(4))
			wall, err := e.Bytes(e.Arg(0), (row+1)*cols*4)
			if err != nil {
				return err
			}
			prev, err := e.Bytes(e.Arg(1), cols*4)
			if err != nil {
				return err
			}
			next, err := e.Bytes(e.Arg(2), cols*4)
			if err != nil {
				return err
			}
			fw, fp, fn := gpu.F32(wall), gpu.F32(prev), gpu.F32(next)
			for c := 0; c < cols; c++ {
				best := fp.Get(c)
				if c > 0 && fp.Get(c-1) < best {
					best = fp.Get(c - 1)
				}
				if c < cols-1 && fp.Get(c+1) < best {
					best = fp.Get(c + 1)
				}
				fn.Set(c, best+fw.Get(row*cols+c))
			}
			return nil
		},
	})

	// bp_layerforward: fused matmul+sigmoid layer of the backprop NN.
	// args: x, w, y, M, N, K.
	gpu.Register(&gpu.Kernel{
		Name: "bp_layerforward",
		Cost: rodCost(sms, 250*sim.Microsecond, 0, 0.8),
		Func: func(e *gpu.Exec) error {
			m, n, k := int(e.Arg(3)), int(e.Arg(4)), int(e.Arg(5))
			xb, err := e.Bytes(e.Arg(0), m*k*4)
			if err != nil {
				return err
			}
			wb, err := e.Bytes(e.Arg(1), k*n*4)
			if err != nil {
				return err
			}
			yb, err := e.Bytes(e.Arg(2), m*n*4)
			if err != nil {
				return err
			}
			x, w := gpu.UnpackF32(xb), gpu.UnpackF32(wb)
			y := make([]float32, m*n)
			for i := 0; i < m; i++ {
				for t := 0; t < k; t++ {
					xv := x[i*k+t]
					if xv == 0 {
						continue
					}
					for j := 0; j < n; j++ {
						y[i*n+j] += xv * w[t*n+j]
					}
				}
			}
			for i := range y {
				y[i] = float32(1 / (1 + math.Exp(-float64(y[i])))) // sigmoid
			}
			copy(yb, gpu.PackF32(y))
			return nil
		},
	})

	// bp_adjust: weight adjustment sweep. args: grad, w, alphaBits; grid [n].
	gpu.Register(&gpu.Kernel{
		Name: "bp_adjust",
		Cost: rodCost(sms, 120*sim.Microsecond, 0, 0.6),
		Func: func(e *gpu.Exec) error {
			n := e.Grid.Elems()
			gb, err := e.Bytes(e.Arg(0), n*4)
			if err != nil {
				return err
			}
			wb, err := e.Bytes(e.Arg(1), n*4)
			if err != nil {
				return err
			}
			alpha := math.Float32frombits(uint32(e.Arg(2)))
			g, w := gpu.F32(gb), gpu.F32(wb)
			for i := 0; i < n; i++ {
				w.Set(i, w.Get(i)+alpha*g.Get(i))
			}
			return nil
		},
	})

	// srad_step: diffusion update used by the backprop-style workloads.
	// args: img, out, n, lambdaBits.
	gpu.Register(&gpu.Kernel{
		Name: "srad_step",
		Cost: rodCost(sms, 150*sim.Microsecond, 10, 0.7),
		Func: func(e *gpu.Exec) error {
			n := e.Grid.Elems()
			img, err := e.Bytes(e.Arg(0), n*4)
			if err != nil {
				return err
			}
			out, err := e.Bytes(e.Arg(1), n*4)
			if err != nil {
				return err
			}
			lambda := math.Float32frombits(uint32(e.Arg(3)))
			fi, fo := gpu.F32(img), gpu.F32(out)
			for i := 0; i < n; i++ {
				left := fi.Get((i + n - 1) % n)
				right := fi.Get((i + 1) % n)
				fo.Set(i, fi.Get(i)+lambda*(left+right-2*fi.Get(i)))
			}
			return nil
		},
	})
}
