package rodinia

import (
	"math"

	"cronus/internal/accel"
	"cronus/internal/gpu"
	"cronus/internal/sim"
)

// This file adds the remaining Rodinia workloads the paper's Figure 7
// covers beyond the core eight: lud (blocked LU decomposition — three tiny
// launches per block step), srad (speckle-reducing diffusion — two launches
// per iteration with a reduction readback), and streamcluster (assign +
// open-center rounds with host-side decisions each round).

// RegisterExtraKernels installs the kernels of the extra benchmarks.
func RegisterExtraKernels(sms float64) {
	// lud_diagonal: factorize the diagonal block. args: a, size, offset.
	gpu.Register(&gpu.Kernel{
		Name: "lud_diagonal",
		Cost: rodCost(sms, 18*sim.Microsecond, 2, 0.15),
		Func: func(e *gpu.Exec) error {
			size := int(e.Arg(1))
			off := int(e.Arg(2))
			b := blockDim
			if off+b > size {
				return nil
			}
			ab, err := e.Bytes(e.Arg(0), size*size*4)
			if err != nil {
				return err
			}
			a := gpu.F32(ab)
			at := func(r, c int) float32 { return a.Get((off+r)*size + off + c) }
			set := func(r, c int, v float32) { a.Set((off+r)*size+off+c, v) }
			for i := 0; i < b; i++ {
				piv := at(i, i)
				if piv == 0 {
					piv = 1e-6
				}
				for r := i + 1; r < b; r++ {
					m := at(r, i) / piv
					set(r, i, m)
					for c := i + 1; c < b; c++ {
						set(r, c, at(r, c)-m*at(i, c))
					}
				}
			}
			return nil
		},
	})

	// lud_perimeter: update the row/column strips. args: a, size, offset.
	gpu.Register(&gpu.Kernel{
		Name: "lud_perimeter",
		Cost: rodCost(sms, 35*sim.Microsecond, 4, 0.4),
		Func: func(e *gpu.Exec) error {
			size := int(e.Arg(1))
			off := int(e.Arg(2))
			ab, err := e.Bytes(e.Arg(0), size*size*4)
			if err != nil {
				return err
			}
			a := gpu.F32(ab)
			b := blockDim
			// Row strip: triangular solve against the diagonal block.
			for cb := off + b; cb < size; cb += b {
				for i := 0; i < b; i++ {
					for c := 0; c < b; c++ {
						var s float32
						for k := 0; k < i; k++ {
							s += a.Get((off+i)*size+off+k) * a.Get((off+k)*size+cb+c)
						}
						a.Set((off+i)*size+cb+c, a.Get((off+i)*size+cb+c)-s)
					}
				}
			}
			return nil
		},
	})

	// lud_internal: trailing submatrix update. args: a, size, offset.
	gpu.Register(&gpu.Kernel{
		Name: "lud_internal",
		Cost: rodCost(sms, 80*sim.Microsecond, 8, 0.9),
		Func: func(e *gpu.Exec) error {
			size := int(e.Arg(1))
			off := int(e.Arg(2))
			ab, err := e.Bytes(e.Arg(0), size*size*4)
			if err != nil {
				return err
			}
			a := gpu.F32(ab)
			b := blockDim
			for r := off + b; r < size; r++ {
				for c := off + b; c < size; c++ {
					var s float32
					for k := 0; k < b; k++ {
						s += a.Get(r*size+off+k) * a.Get((off+k)*size+c)
					}
					a.Set(r*size+c, a.Get(r*size+c)-0.001*s)
				}
			}
			return nil
		},
	})

	// srad_reduce: mean/variance reduction. args: img, stats, n.
	gpu.Register(&gpu.Kernel{
		Name: "srad_reduce",
		Cost: rodCost(sms, 45*sim.Microsecond, 6, 0.6),
		Func: func(e *gpu.Exec) error {
			n := e.Grid.Elems()
			img, err := e.Bytes(e.Arg(0), n*4)
			if err != nil {
				return err
			}
			stats, err := e.Bytes(e.Arg(1), 8)
			if err != nil {
				return err
			}
			fi := gpu.F32(img)
			var sum, sq float64
			for i := 0; i < n; i++ {
				v := float64(fi.Get(i))
				sum += v
				sq += v * v
			}
			fs := gpu.F32(stats)
			fs.Set(0, float32(sum/float64(n)))
			fs.Set(1, float32(sq/float64(n)))
			return nil
		},
	})

	// sc_assign: streamcluster point-to-center assignment with cost.
	// args: pts, centers, cost, n, k, dims.
	gpu.Register(&gpu.Kernel{
		Name: "sc_assign",
		Cost: rodCost(sms, 150*sim.Microsecond, 35, 0.85),
		Func: func(e *gpu.Exec) error {
			n, k, dims := int(e.Arg(3)), int(e.Arg(4)), int(e.Arg(5))
			pts, err := e.Bytes(e.Arg(0), n*dims*4)
			if err != nil {
				return err
			}
			cents, err := e.Bytes(e.Arg(1), k*dims*4)
			if err != nil {
				return err
			}
			cost, err := e.Bytes(e.Arg(2), 4)
			if err != nil {
				return err
			}
			fp, fc := gpu.F32(pts), gpu.F32(cents)
			var total float64
			for i := 0; i < n; i++ {
				best := math.MaxFloat64
				for c := 0; c < k; c++ {
					var d float64
					for j := 0; j < dims; j++ {
						diff := float64(fp.Get(i*dims+j) - fc.Get(c*dims+j))
						d += diff * diff
					}
					if d < best {
						best = d
					}
				}
				total += best
			}
			gpu.F32(cost).Set(0, float32(total))
			return nil
		},
	})
}

const blockDim = 16

// LUD: blocked LU decomposition — three launches per block step, a
// launch-intensive workload like gaussian.
func LUD() Benchmark {
	return Benchmark{
		Name:    "lud",
		Kernels: []string{"lud_diagonal", "lud_perimeter", "lud_internal"},
		Run: func(p *sim.Proc, ops accel.CUDA) error {
			const size = 128
			a, err := allocUpload(p, ops, randFloats(71, size*size))
			if err != nil {
				return err
			}
			for off := 0; off < size; off += blockDim {
				if err := ops.Launch(p, "lud_diagonal", gpu.Dim{blockDim, 1, 1}, a, size, uint64(off)); err != nil {
					return err
				}
				if off+blockDim < size {
					if err := ops.Launch(p, "lud_perimeter", gpu.Dim{size - off, 1, 1}, a, size, uint64(off)); err != nil {
						return err
					}
					if err := ops.Launch(p, "lud_internal", gpu.Dim{size - off, size - off, 1}, a, size, uint64(off)); err != nil {
						return err
					}
				}
			}
			if _, err := ops.DtoH(p, a, size*4); err != nil {
				return err
			}
			return ops.Sync(p)
		},
	}
}

// SRAD: speckle-reducing anisotropic diffusion — a reduction readback plus
// a stencil launch per iteration.
func SRAD() Benchmark {
	return Benchmark{
		Name:    "srad",
		Kernels: []string{"srad_reduce", "srad_step"},
		Run: func(p *sim.Proc, ops accel.CUDA) error {
			const n, iters = 8192, 12
			img, err := allocUpload(p, ops, randFloats(81, n))
			if err != nil {
				return err
			}
			out, err := ops.MemAlloc(p, n*4)
			if err != nil {
				return err
			}
			stats, err := ops.MemAlloc(p, 8)
			if err != nil {
				return err
			}
			for it := 0; it < iters; it++ {
				if err := ops.Launch(p, "srad_reduce", gpu.Dim{n, 1, 1}, img, stats, n); err != nil {
					return err
				}
				// The host reads the statistics to derive the diffusion
				// coefficient each iteration (the srad sync pattern).
				st, err := ops.DtoH(p, stats, 8)
				if err != nil {
					return err
				}
				mean := gpu.UnpackF32(st)[0]
				lambda := float32(0.05)
				if mean > 0.5 {
					lambda = 0.02
				}
				if err := ops.Launch(p, "srad_step", gpu.Dim{n, 1, 1}, img, out, n, gpu.FloatBits(lambda)); err != nil {
					return err
				}
				img, out = out, img
			}
			if _, err := ops.DtoH(p, img, 1024); err != nil {
				return err
			}
			return ops.Sync(p)
		},
	}
}

// Streamcluster: online clustering — an assignment kernel and a host-side
// open-center decision per round.
func Streamcluster() Benchmark {
	return Benchmark{
		Name:    "streamcluster",
		Kernels: []string{"sc_assign"},
		Run: func(p *sim.Proc, ops accel.CUDA) error {
			const n, dims, rounds = 1024, 8, 10
			pts, err := allocUpload(p, ops, randFloats(91, n*dims))
			if err != nil {
				return err
			}
			centers := randFloats(92, 4*dims)
			k := 4
			gCents, err := ops.MemAlloc(p, 16*dims*4)
			if err != nil {
				return err
			}
			gCost, err := ops.MemAlloc(p, 4)
			if err != nil {
				return err
			}
			prevCost := float32(math.MaxFloat32)
			for r := 0; r < rounds; r++ {
				if err := ops.HtoD(p, gCents, gpu.PackF32(centers)); err != nil {
					return err
				}
				if err := ops.Launch(p, "sc_assign", gpu.Dim{n, 1, 1}, pts, gCents, gCost, n, uint64(k), dims); err != nil {
					return err
				}
				cb, err := ops.DtoH(p, gCost, 4)
				if err != nil {
					return err
				}
				cost := gpu.UnpackF32(cb)[0]
				// Host decision: open another center if the gain warrants.
				if cost < prevCost*0.95 && k < 16 {
					centers = append(centers, randFloats(int64(100+r), dims)...)
					k++
				}
				prevCost = cost
			}
			return ops.Sync(p)
		},
	}
}

// AllExtended returns the full Figure 7 suite including the extra
// workloads.
func AllExtended() []Benchmark {
	return append(All(), LUD(), SRAD(), Streamcluster())
}
