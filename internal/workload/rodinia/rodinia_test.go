package rodinia_test

import (
	"testing"

	"cronus/internal/accel"
	"cronus/internal/baseline"
	"cronus/internal/core"
	"cronus/internal/gpu"
	"cronus/internal/sim"
	"cronus/internal/workload/rodinia"
)

// timeOn measures one benchmark pass in virtual time on a given system.
func timeOn(t *testing.T, b rodinia.Benchmark, system baseline.System) sim.Duration {
	t.Helper()
	var elapsed sim.Duration
	switch system {
	case baseline.CRONUS:
		err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
			rodinia.RegisterKernels(pl.GPUs[0].Dev.SMs())
			s, err := pl.NewSession(p, "rodinia")
			if err != nil {
				return err
			}
			ops, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: b.Cubin(), RingPages: 65})
			if err != nil {
				return err
			}
			defer ops.Close(p)
			start := p.Now()
			if err := b.Run(p, ops); err != nil {
				return err
			}
			elapsed = sim.Duration(p.Now() - start)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	default:
		k := sim.NewKernel()
		var fail error
		k.Spawn("main", func(p *sim.Proc) {
			defer k.Stop()
			costs := sim.DefaultCosts()
			dev := gpu.New(k, costs, gpu.Config{Name: "g", MemBytes: 1 << 30, SMs: 46, CopyEngs: 2, MPS: true, KeySeed: "x"})
			gpu.RegisterStdKernels(dev.SMs())
			rodinia.RegisterKernels(dev.SMs())
			var ops accel.CUDA
			var err error
			switch system {
			case baseline.Native:
				ops, err = baseline.NewNativeCUDA(dev, costs, b.Cubin())
			case baseline.TrustZone:
				ops, err = baseline.NewTrustZoneCUDA(dev, costs, b.Cubin())
			case baseline.HIX:
				ops, err = baseline.NewHIXCUDA(dev, costs, b.Cubin())
			}
			if err != nil {
				fail = err
				return
			}
			start := p.Now()
			if err := b.Run(p, ops); err != nil {
				fail = err
				return
			}
			elapsed = sim.Duration(p.Now() - start)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if fail != nil {
			t.Fatal(fail)
		}
	}
	return elapsed
}

func TestAllBenchmarksRunOnAllSystems(t *testing.T) {
	for _, b := range rodinia.AllExtended() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			native := timeOn(t, b, baseline.Native)
			tz := timeOn(t, b, baseline.TrustZone)
			hix := timeOn(t, b, baseline.HIX)
			cronus := timeOn(t, b, baseline.CRONUS)
			t.Logf("%-11s native=%v tz=%v hix=%v cronus=%v (cronus %.2fx, hix %.2fx)",
				b.Name, native, tz, hix, cronus,
				float64(cronus)/float64(native), float64(hix)/float64(native))
			if native <= 0 {
				t.Fatal("no virtual time elapsed")
			}
			// Shape checks from Figure 7: native <= tz <= hix;
			// CRONUS close to native; HIX pays lock-step crypto RPC.
			if tz < native {
				t.Error("monolithic TrustZone faster than native")
			}
			if float64(cronus) > 1.35*float64(native) {
				t.Errorf("CRONUS %.2fx native — outside Figure 7's band", float64(cronus)/float64(native))
			}
			if hix < cronus {
				t.Error("HIX-TrustZone beat CRONUS — contradicts Figure 7")
			}
		})
	}
}

func TestLaunchHeavyBenchmarksPunishHIX(t *testing.T) {
	// gaussian/nw issue hundreds of tiny launches; lock-step HIX must be
	// dramatically slower there (the Figure 7 signature).
	for _, name := range []string{"gaussian", "nw"} {
		b, err := rodinia.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		native := timeOn(t, b, baseline.Native)
		hix := timeOn(t, b, baseline.HIX)
		if float64(hix) < 1.5*float64(native) {
			t.Errorf("%s: HIX %.2fx native, expected >1.5x", name, float64(hix)/float64(native))
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := rodinia.ByName("mummergpu"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
