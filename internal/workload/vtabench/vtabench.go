// Package vtabench reproduces the vta-bench NPU microbenchmarks used in
// Figure 10a: tiled GEMM, vector ALU sweeps, and a small convolution, each
// expressed as VTA instruction streams that run functionally on the NPU
// simulator through any accel.NPU implementation.
package vtabench

import (
	"fmt"
	"math/rand"

	"cronus/internal/accel"
	"cronus/internal/npu"
	"cronus/internal/sim"
)

// Benchmark is one vta-bench workload.
type Benchmark struct {
	Name string
	// Run executes one pass and returns the number of NPU "operations"
	// (GEMM block ops + ALU block ops) performed, for throughput reports.
	Run func(p *sim.Proc, ops accel.NPU) (int, error)
}

// All returns the vta-bench suite.
func All() []Benchmark {
	return []Benchmark{GEMM(64, 64, 64), GEMM(128, 64, 128), ALU(4096), Conv(16, 16, 16, 16)}
}

func randBytes(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(int8(rng.Intn(9) - 4))
	}
	return out
}

// PackWeights lays out B[K×N] int8 as VTA weight blocks W[nb][kb][o][k]
// with W[nb][kb][o][k] = B[kb·16+k][nb·16+o].
func PackWeights(b []byte, kk, n int) []byte {
	nb := n / npu.BlockOut
	kb := kk / npu.BlockIn
	out := make([]byte, nb*kb*npu.WgtBlockBytes)
	idx := 0
	for j := 0; j < nb; j++ {
		for t := 0; t < kb; t++ {
			for o := 0; o < npu.BlockOut; o++ {
				for k := 0; k < npu.BlockIn; k++ {
					out[idx] = b[(t*npu.BlockIn+k)*n+j*npu.BlockOut+o]
					idx++
				}
			}
		}
	}
	return out
}

// MatmulProgram emits the instruction stream for C[M×N] = A[M×K] × B with
// packed weights at wAddr (N, K multiples of 16).
func MatmulProgram(aAddr, wAddr, cAddr uint64, m, n, kk int) []npu.Insn {
	nb := n / npu.BlockOut
	kb := kk / npu.BlockIn
	var insns []npu.Insn
	insns = append(insns, npu.Insn{Op: npu.OpLoad, Mem: npu.MemWgt, DRAMAddr: wAddr, Count: uint32(nb * kb)})
	for row := 0; row < m; row++ {
		insns = append(insns, npu.Insn{
			Op: npu.OpLoad, Mem: npu.MemInp,
			DRAMAddr: aAddr + uint64(row*kk), Count: uint32(kb),
		})
		for j := 0; j < nb; j++ {
			insns = append(insns, npu.Insn{
				Op:     npu.OpGemm,
				InpIdx: 0, InpStride: 1,
				WgtIdx: uint32(j * kb), WgtStride: 1,
				AccIdx: uint32(j), AccStride: 0,
				Count: uint32(kb), Reset: true,
			})
		}
		insns = append(insns,
			npu.Insn{Op: npu.OpCommit, SrcIdx: 0, DstIdx: 0, Count: uint32(nb)},
			npu.Insn{Op: npu.OpStore, Mem: npu.MemOut, DRAMAddr: cAddr + uint64(row*n), Count: uint32(nb)},
		)
	}
	insns = append(insns, npu.Insn{Op: npu.OpFinish})
	return insns
}

// GEMM is the tiled matrix multiply benchmark.
func GEMM(m, k, n int) Benchmark {
	return Benchmark{
		Name: fmt.Sprintf("gemm-%dx%dx%d", m, k, n),
		Run: func(p *sim.Proc, ops accel.NPU) (int, error) {
			a := randBytes(1, m*k)
			b := randBytes(2, k*n)
			w := PackWeights(b, k, n)
			aAddr, err := ops.MemAlloc(p, uint64(len(a)))
			if err != nil {
				return 0, err
			}
			wAddr, err := ops.MemAlloc(p, uint64(len(w)))
			if err != nil {
				return 0, err
			}
			cAddr, err := ops.MemAlloc(p, uint64(m*n))
			if err != nil {
				return 0, err
			}
			if err := ops.HtoD(p, aAddr, a); err != nil {
				return 0, err
			}
			if err := ops.HtoD(p, wAddr, w); err != nil {
				return 0, err
			}
			prog := MatmulProgram(aAddr, wAddr, cAddr, m, n, k)
			if err := ops.Run(p, prog); err != nil {
				return 0, err
			}
			if _, err := ops.DtoH(p, cAddr, m*n); err != nil {
				return 0, err
			}
			if err := ops.Sync(p); err != nil {
				return 0, err
			}
			return m * (n / npu.BlockOut) * (k / npu.BlockIn), nil
		},
	}
}

// ALU is the vector ALU sweep benchmark: load accumulators, run a chain of
// lane-wise operations, store the narrowed results.
func ALU(blocks int) Benchmark {
	if blocks > npu.AccBufBlocks {
		blocks = npu.AccBufBlocks
	}
	return Benchmark{
		Name: fmt.Sprintf("alu-%d", blocks),
		Run: func(p *sim.Proc, ops accel.NPU) (int, error) {
			accBytes := randBytes(3, blocks*npu.AccBlockBytes)
			addr, err := ops.MemAlloc(p, uint64(len(accBytes)))
			if err != nil {
				return 0, err
			}
			outAddr, err := ops.MemAlloc(p, uint64(blocks*npu.OutBlockBytes))
			if err != nil {
				return 0, err
			}
			if err := ops.HtoD(p, addr, accBytes); err != nil {
				return 0, err
			}
			nOps := 0
			// Process in scratchpad-sized batches.
			chunk := npu.OutBufBlocks
			if chunk > npu.AccBufBlocks {
				chunk = npu.AccBufBlocks
			}
			for base := 0; base < blocks; base += chunk {
				cnt := chunk
				if cnt > blocks-base {
					cnt = blocks - base
				}
				insns := []npu.Insn{
					{Op: npu.OpLoad, Mem: npu.MemAcc, DRAMAddr: addr + uint64(base*npu.AccBlockBytes), Count: uint32(cnt)},
					{Op: npu.OpAlu, Alu: npu.AluMax, UseImm: true, Imm: 0, Count: uint32(cnt)},
					{Op: npu.OpAlu, Alu: npu.AluAdd, UseImm: true, Imm: 7, Count: uint32(cnt)},
					{Op: npu.OpAlu, Alu: npu.AluShr, UseImm: true, Imm: 2, Count: uint32(cnt)},
					{Op: npu.OpCommit, Count: uint32(cnt)},
					{Op: npu.OpStore, Mem: npu.MemOut, DRAMAddr: outAddr + uint64(base*npu.OutBlockBytes), Count: uint32(cnt)},
					{Op: npu.OpFinish},
				}
				if err := ops.Run(p, insns); err != nil {
					return 0, err
				}
				nOps += 3 * cnt
			}
			if _, err := ops.DtoH(p, outAddr, blocks*npu.OutBlockBytes); err != nil {
				return 0, err
			}
			if err := ops.Sync(p); err != nil {
				return 0, err
			}
			return nOps, nil
		},
	}
}

// Conv is a small convolution lowered to GEMM tiles (HWCN-style): spatial
// positions × (Cin·9 → Cout) with 16-lane blocking.
func Conv(h, w, cin, cout int) Benchmark {
	return Benchmark{
		Name: fmt.Sprintf("conv-%dx%dx%d-%d", h, w, cin, cout),
		Run: func(p *sim.Proc, ops accel.NPU) (int, error) {
			m := h * w
			k := ((cin*9 + npu.BlockIn - 1) / npu.BlockIn) * npu.BlockIn
			n := ((cout + npu.BlockOut - 1) / npu.BlockOut) * npu.BlockOut
			return GEMM(m, k, n).Run(p, ops)
		},
	}
}
