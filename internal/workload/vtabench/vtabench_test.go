package vtabench_test

import (
	"testing"

	"cronus/internal/baseline"
	"cronus/internal/core"
	"cronus/internal/npu"
	"cronus/internal/sim"
	"cronus/internal/workload/vtabench"
)

func nativeNPU(p *sim.Proc) *baseline.NativeNPU {
	costs := sim.DefaultCosts()
	dev := npu.New(p.Kernel(), costs, npu.Config{Name: "n", MemBytes: 64 << 20, KeySeed: "t"})
	return baseline.NewNativeNPU(dev, costs)
}

func TestGEMMMatchesReference(t *testing.T) {
	k := sim.NewKernel()
	var fail error
	k.Spawn("main", func(p *sim.Proc) {
		defer k.Stop()
		ops := nativeNPU(p)
		const M, K, N = 8, 32, 32
		// Reproduce the benchmark's deterministic inputs and check the
		// device output against a host reference.
		b := vtabench.GEMM(M, K, N)
		if _, err := b.Run(p, ops); err != nil {
			fail = err
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatal(fail)
	}
}

func TestAllBenchmarksRunNativeAndCharge(t *testing.T) {
	for _, b := range vtabench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			k := sim.NewKernel()
			var fail error
			var opsCount int
			var elapsed sim.Duration
			k.Spawn("main", func(p *sim.Proc) {
				defer k.Stop()
				ops := nativeNPU(p)
				start := p.Now()
				n, err := b.Run(p, ops)
				if err != nil {
					fail = err
					return
				}
				opsCount = n
				elapsed = sim.Duration(p.Now() - start)
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if fail != nil {
				t.Fatal(fail)
			}
			if opsCount <= 0 || elapsed <= 0 {
				t.Fatalf("ops=%d elapsed=%v", opsCount, elapsed)
			}
		})
	}
}

func TestVTABenchOnCRONUSLowOverhead(t *testing.T) {
	b := vtabench.GEMM(64, 64, 64)
	var native, cronus sim.Duration
	{
		k := sim.NewKernel()
		var fail error
		k.Spawn("main", func(p *sim.Proc) {
			defer k.Stop()
			ops := nativeNPU(p)
			start := p.Now()
			if _, err := b.Run(p, ops); err != nil {
				fail = err
				return
			}
			native = sim.Duration(p.Now() - start)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if fail != nil {
			t.Fatal(fail)
		}
	}
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "vta")
		if err != nil {
			return err
		}
		ops, err := s.OpenNPU(p, core.NPUOptions{RingPages: 129})
		if err != nil {
			return err
		}
		defer ops.Close(p)
		start := p.Now()
		if _, err := b.Run(p, ops); err != nil {
			return err
		}
		cronus = sim.Duration(p.Now() - start)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(cronus) / float64(native)
	t.Logf("native %v, cronus %v (%.2fx)", native, cronus, ratio)
	if ratio > 1.25 {
		t.Errorf("CRONUS NPU overhead %.2fx outside the Figure 10a band", ratio)
	}
	if ratio < 1.0 {
		t.Error("CRONUS cannot beat native")
	}
}

func TestPackWeightsLayout(t *testing.T) {
	const K, N = 32, 32
	b := make([]byte, K*N)
	for i := range b {
		b[i] = byte(i)
	}
	w := vtabench.PackWeights(b, K, N)
	// W[nb][kb][o][k] = B[kb*16+k][nb*16+o]
	nb, kb, o, kk := 1, 1, 3, 5
	idx := ((nb*2+kb)*16+o)*16 + kk // nb-major with kb=K/16=2
	want := b[(kb*16+kk)*N+nb*16+o]
	if w[idx] != want {
		t.Fatalf("packed[%d] = %d, want %d", idx, w[idx], want)
	}
}
