package experiments

import (
	"fmt"

	"cronus/internal/core"
	"cronus/internal/dnn"
	"cronus/internal/sim"
)

// Fig11aRow is one spatial-sharing configuration: n LeNet training tenants
// on one GPU.
type Fig11aRow struct {
	Tenants           int
	SpatialSteps      int // total steps completed in the window with MPS
	TemporalSteps     int // with exclusive (dedicated/temporal) device access
	SpatialGainPct    float64
	TemporalBaseline1 int
}

// Figure11a reproduces the spatial-sharing experiment: LeNet training
// throughput with 1, 2 and 4 mEnclaves on the same GPU, spatially shared
// (MPS-style concurrent kernels) versus temporally shared (each kernel owns
// the whole device).
func Figure11a(window sim.Duration) ([]Fig11aRow, error) {
	if window <= 0 {
		window = 20 * sim.Millisecond
	}
	run := func(tenants int, mps bool) (int, error) {
		total := 0
		err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
			dnn.RegisterKernels(pl.GPUs[0].Dev.SMs())
			pl.GPUs[0].Dev.SetMPS(mps)
			k := pl.K
			wg := sim.NewWaitGroup(k)
			counts := make([]int, tenants)
			for i := 0; i < tenants; i++ {
				i := i
				wg.Add(1)
				k.Spawn(fmt.Sprintf("tenant-%d", i), func(tp *sim.Proc) {
					defer wg.Done()
					s, err := pl.NewSession(tp, fmt.Sprintf("tenant-%d", i))
					if err != nil {
						return
					}
					conn, err := s.OpenCUDA(tp, core.CUDAOptions{Cubin: dnn.Cubin(), RingPages: 65})
					if err != nil {
						return
					}
					defer conn.Close(tp)
					tr, err := dnn.NewTrainer(tp, conn, dnn.LeNet2(), 8)
					if err != nil {
						return
					}
					deadline := tp.Now() + sim.Time(window)
					for tp.Now() < deadline {
						if _, err := tr.Step(tp); err != nil {
							return
						}
						counts[i]++
					}
				})
			}
			wg.Wait(p)
			for _, c := range counts {
				total += c
			}
			return nil
		})
		return total, err
	}
	var rows []Fig11aRow
	base1 := 0
	for _, tenants := range []int{1, 2, 4} {
		spatial, err := run(tenants, true)
		if err != nil {
			return nil, fmt.Errorf("fig11a %d tenants spatial: %w", tenants, err)
		}
		temporal, err := run(tenants, false)
		if err != nil {
			return nil, fmt.Errorf("fig11a %d tenants temporal: %w", tenants, err)
		}
		if tenants == 1 {
			base1 = spatial
		}
		rows = append(rows, Fig11aRow{
			Tenants:           tenants,
			SpatialSteps:      spatial,
			TemporalSteps:     temporal,
			SpatialGainPct:    100 * (float64(spatial)/float64(temporal) - 1),
			TemporalBaseline1: base1,
		})
	}
	return rows, nil
}

// RenderFigure11a formats the spatial-sharing rows.
func RenderFigure11a(rows []Fig11aRow) *Table {
	t := &Table{
		Title:   "Figure 11a: LeNet training throughput, n mEnclaves sharing one GPU (steps per window)",
		Columns: []string{"mEnclaves", "spatial (MPS)", "temporal (dedicated)", "spatial gain"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Tenants),
			fmt.Sprintf("%d", r.SpatialSteps),
			fmt.Sprintf("%d", r.TemporalSteps),
			fmt.Sprintf("%+.1f%%", r.SpatialGainPct),
		})
	}
	return t
}

// ShareMode is a Figure 11b gradient-exchange mechanism.
type ShareMode string

// The three mechanisms compared by Figure 11b.
const (
	ShareP2P       ShareMode = "pcie-p2p"   // trusted shared GPU memory over PCIe
	ShareSecureMem ShareMode = "secure-mem" // staging through trusted CPU memory
	ShareEncrypted ShareMode = "encrypted"  // HIX/Graviton-style encrypted staging
)

// ShareModes in rendering order.
var ShareModes = []ShareMode{ShareP2P, ShareSecureMem, ShareEncrypted}

// exchangeCost charges one gradient transfer of n bytes under a mode.
func exchangeCost(p *sim.Proc, costs *sim.CostModel, mode ShareMode, n int) {
	switch mode {
	case ShareP2P:
		// Direct GPU→GPU DMA through trusted shared device memory.
		p.Sleep(costs.DMA(n))
	case ShareSecureMem:
		// DtoH into trusted CPU memory, copy, HtoD into the peer.
		p.Sleep(costs.DMA(n) + costs.Memcpy(n) + costs.DMA(n))
	case ShareEncrypted:
		// DtoH, seal, cross untrusted memory, open, HtoD — plus the
		// lock-step switches (what HIX/Graviton-style sharing pays).
		p.Sleep(costs.DMA(n) + costs.Encrypt(n) + costs.UntrustedMsg +
			2*costs.SyncRPCSwitch() + costs.Encrypt(n) + costs.DMA(n))
	}
}

// Fig11bRow is one (GPU count, mode) data-parallel configuration.
type Fig11bRow struct {
	GPUs    int
	Mode    ShareMode
	Steps   int
	Total   sim.Duration
	PerStep sim.Duration
}

// Figure11b reproduces the multi-GPU data-parallel LeNet experiment: time
// per training step with 1, 2 and 4 GPUs under the three gradient-sharing
// mechanisms.
func Figure11b(steps int) ([]Fig11bRow, error) {
	if steps <= 0 {
		steps = 6
	}
	var rows []Fig11bRow
	for _, nGPUs := range []int{1, 2, 4} {
		for _, mode := range ShareModes {
			if nGPUs == 1 && mode != ShareP2P {
				continue // no exchange with a single GPU
			}
			var total sim.Duration
			cfg := core.DefaultConfig()
			cfg.GPUs = nGPUs
			mode := mode
			nGPUs := nGPUs
			err := core.Run(cfg, func(pl *core.Platform, p *sim.Proc) error {
				dnn.RegisterKernels(pl.GPUs[0].Dev.SMs())
				k := pl.K
				s, err := pl.NewSession(p, "dp-train")
				if err != nil {
					return err
				}
				trainers := make([]*dnn.Trainer, nGPUs)
				conns := make([]*core.CUDAConn, nGPUs)
				for i := 0; i < nGPUs; i++ {
					conn, err := s.OpenCUDA(p, core.CUDAOptions{
						Cubin: dnn.Cubin(), RingPages: 65,
						Partition: fmt.Sprintf("gpu-part%d", i),
						Name:      fmt.Sprintf("worker-%d", i),
					})
					if err != nil {
						return err
					}
					conns[i] = conn
					if trainers[i], err = dnn.NewTrainer(p, conn, dnn.LeNet2(), 8); err != nil {
						return err
					}
				}
				gradBytes := trainers[0].GradientBytes()
				start := p.Now()
				for step := 0; step < steps; step++ {
					// Workers compute their local step in parallel.
					wg := sim.NewWaitGroup(k)
					for i := 0; i < nGPUs; i++ {
						i := i
						wg.Add(1)
						k.Spawn(fmt.Sprintf("worker-%d", i), func(tp *sim.Proc) {
							defer wg.Done()
							_, _ = trainers[i].Step(tp)
						})
					}
					wg.Wait(p)
					// All-reduce: 2(n-1) transfers of the gradients.
					for i := 0; i < 2*(nGPUs-1); i++ {
						exchangeCost(p, pl.Costs, mode, gradBytes)
					}
				}
				total = sim.Duration(p.Now() - start)
				for _, c := range conns {
					c.Close(p)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("fig11b %d GPUs %s: %w", nGPUs, mode, err)
			}
			rows = append(rows, Fig11bRow{
				GPUs: nGPUs, Mode: mode, Steps: steps,
				Total: total, PerStep: total / sim.Duration(steps),
			})
		}
	}
	return rows, nil
}

// RenderFigure11b formats the multi-GPU rows.
func RenderFigure11b(rows []Fig11bRow) *Table {
	t := &Table{
		Title:   "Figure 11b: data-parallel LeNet, time per step by gradient-sharing mechanism",
		Columns: []string{"GPUs", "mechanism", "per-step(ms)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.GPUs), string(r.Mode), ms(r.PerStep),
		})
	}
	return t
}
