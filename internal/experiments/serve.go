package experiments

import (
	"fmt"

	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/tvm"
)

// ServeRow is one serving-plane run at a fixed offered load and one dynamic
// batching setting.
type ServeRow struct {
	MaxBatch   int
	AvgBatch   float64
	Offered    uint64
	Completed  uint64
	Shed       uint64
	P50        sim.Duration
	P95        sim.Duration
	GoodputRPS float64
}

// ServeBatchSweep drives the multi-tenant serving plane (internal/serve) at
// a saturating offered load and sweeps the dynamic batch cap. The load is
// deliberately in the regime where per-item device work is comparable to the
// fixed per-batch overhead (sRPC round trips, kernel dispatch), so batching
// amortization shows up directly as lower p50 and higher goodput.
func ServeBatchSweep(batchCaps []int) ([]ServeRow, error) {
	if len(batchCaps) == 0 {
		batchCaps = []int{1, 4, 8}
	}
	var rows []ServeRow
	for _, mb := range batchCaps {
		cfg := serve.Config{
			Seed:          17,
			Window:        20 * sim.Millisecond,
			Policy:        serve.RoundRobin,
			MaxBatch:      mb,
			BatchWindow:   40 * sim.Microsecond,
			GPUPartitions: 1,
			GPUFlopsPerNs: 400,
			Tenants: []serve.TenantSpec{
				{
					Name: "load", Arrival: serve.FixedRate, Rate: 90000, QueueCap: 64,
					Mix: []serve.WorkClass{{Name: "resnet50", Graph: tvm.ResNet50()}},
				},
			},
		}
		res, err := serve.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("serve sweep max-batch=%d: %w", mb, err)
		}
		tr := res.Tenants[0]
		rows = append(rows, ServeRow{
			MaxBatch:   mb,
			AvgBatch:   res.AvgBatch(),
			Offered:    tr.Offered,
			Completed:  tr.Completed,
			Shed:       tr.Shed,
			P50:        sim.Duration(tr.P50NS),
			P95:        sim.Duration(tr.P95NS),
			GoodputRPS: tr.GoodputRPS,
		})
	}
	return rows, nil
}

// RenderServeBatchSweep formats the batch sweep.
func RenderServeBatchSweep(rows []ServeRow) *Table {
	t := &Table{
		Title:   "Serving plane: throughput vs dynamic batch cap at fixed offered load",
		Columns: []string{"max-batch", "avg-batch", "offered", "completed", "shed", "p50", "p95", "goodput/s"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.MaxBatch),
			fmt.Sprintf("%.2f", r.AvgBatch),
			fmt.Sprintf("%d", r.Offered),
			fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%d", r.Shed),
			r.P50.String(),
			r.P95.String(),
			fmt.Sprintf("%.0f", r.GoodputRPS),
		})
	}
	return t
}
