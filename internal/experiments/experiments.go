// Package experiments regenerates every table and figure of the CRONUS
// evaluation (§VI) as code: each ExpN function runs the relevant workloads
// on the relevant systems inside fresh simulations and returns typed rows;
// Render* helpers print them in the same shape the paper reports.
//
// The per-experiment index lives in DESIGN.md §4; paper-vs-measured notes in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cronus/internal/accel"
	"cronus/internal/baseline"
	"cronus/internal/core"
	"cronus/internal/gpu"
	"cronus/internal/sim"
)

// Systems evaluated by the GPU experiments, in rendering order.
var GPUSystems = []baseline.System{baseline.Native, baseline.TrustZone, baseline.HIX, baseline.CRONUS}

// runOnSystem executes body against a CUDA ops implementation for the given
// system in a fresh simulation, returning the virtual time body consumed.
func runOnSystem(system baseline.System, cubin []byte, registerExtra func(sms float64),
	body func(p *sim.Proc, ops accel.CUDA) error) (sim.Duration, error) {
	var elapsed sim.Duration
	if system == baseline.CRONUS {
		err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
			if registerExtra != nil {
				registerExtra(pl.GPUs[0].Dev.SMs())
			}
			s, err := pl.NewSession(p, "exp")
			if err != nil {
				return err
			}
			ops, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: cubin, RingPages: 65})
			if err != nil {
				return err
			}
			defer ops.Close(p)
			start := p.Now()
			if err := body(p, ops); err != nil {
				return err
			}
			elapsed = sim.Duration(p.Now() - start)
			return nil
		})
		return elapsed, err
	}
	k := sim.NewKernel()
	var fail error
	k.Spawn("main", func(p *sim.Proc) {
		defer k.Stop()
		costs := sim.DefaultCosts()
		dev := gpu.New(k, costs, gpu.Config{Name: "gpu0", MemBytes: 1 << 30, SMs: 46, CopyEngs: 2, MPS: true, KeySeed: "exp"})
		gpu.RegisterStdKernels(dev.SMs())
		if registerExtra != nil {
			registerExtra(dev.SMs())
		}
		var ops accel.CUDA
		var err error
		switch system {
		case baseline.Native:
			ops, err = baseline.NewNativeCUDA(dev, costs, cubin)
		case baseline.TrustZone:
			ops, err = baseline.NewTrustZoneCUDA(dev, costs, cubin)
		case baseline.HIX:
			ops, err = baseline.NewHIXCUDA(dev, costs, cubin)
		default:
			err = fmt.Errorf("experiments: unknown system %q", system)
		}
		if err != nil {
			fail = err
			return
		}
		start := p.Now()
		if err := body(p, ops); err != nil {
			fail = err
			return
		}
		elapsed = sim.Duration(p.Now() - start)
	})
	if err := k.Run(); err != nil {
		return 0, err
	}
	return elapsed, fail
}

// Table is a rendered text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("\n")
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func ms(d sim.Duration) string { return fmt.Sprintf("%.3f", d.Milliseconds()) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
