package experiments

import (
	"fmt"

	"cronus/internal/baseline"
	"cronus/internal/sim"
	"cronus/internal/workload/rodinia"
)

// Fig7Row is one Rodinia benchmark across the four systems.
type Fig7Row struct {
	Benchmark  string
	Times      map[baseline.System]sim.Duration
	Normalized map[baseline.System]float64 // vs native gdev
}

// Figure7 reproduces the Rodinia microbenchmark comparison: computation
// time of each benchmark on native gdev, monolithic TrustZone,
// HIX-TrustZone and CRONUS, normalized to native.
func Figure7() ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, b := range rodinia.AllExtended() {
		row := Fig7Row{
			Benchmark:  b.Name,
			Times:      make(map[baseline.System]sim.Duration),
			Normalized: make(map[baseline.System]float64),
		}
		for _, system := range GPUSystems {
			d, err := runOnSystem(system, b.Cubin(), rodinia.RegisterKernels, b.Run)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s on %s: %w", b.Name, system, err)
			}
			row.Times[system] = d
		}
		native := float64(row.Times[baseline.Native])
		for s, d := range row.Times {
			row.Normalized[s] = float64(d) / native
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure7 formats the rows like the paper's normalized bar chart.
func RenderFigure7(rows []Fig7Row) *Table {
	t := &Table{
		Title:   "Figure 7: Normalized computation time of Rodinia (vs native gdev)",
		Columns: []string{"benchmark", "native(ms)", "trustzone", "hix-trustzone", "cronus"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Benchmark,
			ms(r.Times[baseline.Native]),
			fmt.Sprintf("%.3fx", r.Normalized[baseline.TrustZone]),
			fmt.Sprintf("%.3fx", r.Normalized[baseline.HIX]),
			fmt.Sprintf("%.3fx", r.Normalized[baseline.CRONUS]),
		})
	}
	return t
}
