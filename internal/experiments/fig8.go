package experiments

import (
	"fmt"

	"cronus/internal/accel"
	"cronus/internal/baseline"
	"cronus/internal/dnn"
	"cronus/internal/sim"
)

// Fig8Row is one DNN training workload across the four systems.
type Fig8Row struct {
	Model    string
	Dataset  string
	Batch    int
	Iters    int
	Times    map[baseline.System]sim.Duration // total for Iters iterations
	Overhead map[baseline.System]float64      // vs native
}

// Figure8 reproduces the DNN training comparison: per-iteration training
// time of LeNet-2/MNIST, ResNet50/CIFAR-10, VGG16/CIFAR-10 and
// DenseNet/ImageNet under PyTorch-style streams on the four systems.
func Figure8(iters, batch int) ([]Fig8Row, error) {
	if iters <= 0 {
		iters = 3
	}
	if batch <= 0 {
		batch = 16
	}
	var rows []Fig8Row
	for _, model := range dnn.TrainingModels() {
		row := Fig8Row{
			Model:    model.Name,
			Dataset:  model.Dataset,
			Batch:    batch,
			Iters:    iters,
			Times:    make(map[baseline.System]sim.Duration),
			Overhead: make(map[baseline.System]float64),
		}
		for _, system := range GPUSystems {
			model := model
			var stepTime sim.Duration // training iterations only, not setup
			_, err := runOnSystem(system, dnn.Cubin(), dnn.RegisterKernels,
				func(p *sim.Proc, ops accel.CUDA) error {
					tr, err := dnn.NewTrainer(p, ops, model, batch)
					if err != nil {
						return err
					}
					start := p.Now()
					for i := 0; i < iters; i++ {
						if _, err := tr.Step(p); err != nil {
							return err
						}
					}
					stepTime = sim.Duration(p.Now() - start)
					return nil
				})
			if err != nil {
				return nil, fmt.Errorf("fig8 %s on %s: %w", model.Name, system, err)
			}
			row.Times[system] = stepTime
		}
		native := float64(row.Times[baseline.Native])
		for s, d := range row.Times {
			row.Overhead[s] = float64(d)/native - 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure8 formats training times and overheads.
func RenderFigure8(rows []Fig8Row) *Table {
	t := &Table{
		Title:   "Figure 8: DNN training time (PyTorch-style streams)",
		Columns: []string{"model", "dataset", "native(ms)", "trustzone", "hix-trustzone", "cronus", "cronus overhead"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Model, r.Dataset,
			ms(r.Times[baseline.Native]),
			ms(r.Times[baseline.TrustZone]),
			ms(r.Times[baseline.HIX]),
			ms(r.Times[baseline.CRONUS]),
			fmt.Sprintf("%+.2f%%", 100*r.Overhead[baseline.CRONUS]),
		})
	}
	return t
}
