package experiments

import (
	"fmt"

	"cronus/internal/accel"
	"cronus/internal/baseline"
	"cronus/internal/core"
	"cronus/internal/npu"
	"cronus/internal/sim"
	"cronus/internal/tvm"
	"cronus/internal/workload/vtabench"
)

// NPUSystems evaluated by the NPU experiments.
var NPUSystems = []baseline.System{baseline.Native, baseline.TrustZone, baseline.CRONUS}

// runOnNPUSystem executes body against an NPU ops implementation.
func runOnNPUSystem(system baseline.System, body func(p *sim.Proc, ops accel.NPU) error) (sim.Duration, error) {
	var elapsed sim.Duration
	if system == baseline.CRONUS {
		err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
			s, err := pl.NewSession(p, "npu-exp")
			if err != nil {
				return err
			}
			ops, err := s.OpenNPU(p, core.NPUOptions{RingPages: 257, Memory: "128M"})
			if err != nil {
				return err
			}
			defer ops.Close(p)
			start := p.Now()
			if err := body(p, ops); err != nil {
				return err
			}
			elapsed = sim.Duration(p.Now() - start)
			return nil
		})
		return elapsed, err
	}
	k := sim.NewKernel()
	var fail error
	k.Spawn("main", func(p *sim.Proc) {
		defer k.Stop()
		costs := sim.DefaultCosts()
		dev := npu.New(k, costs, npu.Config{Name: "npu0", MemBytes: 256 << 20, KeySeed: "exp"})
		var ops accel.NPU
		switch system {
		case baseline.Native:
			ops = baseline.NewNativeNPU(dev, costs)
		case baseline.TrustZone:
			ops = baseline.NewTrustZoneNPU(dev, costs)
		default:
			fail = fmt.Errorf("experiments: unknown NPU system %q", system)
			return
		}
		start := p.Now()
		if err := body(p, ops); err != nil {
			fail = err
			return
		}
		elapsed = sim.Duration(p.Now() - start)
	})
	if err := k.Run(); err != nil {
		return 0, err
	}
	return elapsed, fail
}

// Fig10aRow is one vta-bench workload's throughput across systems.
type Fig10aRow struct {
	Benchmark  string
	Ops        int
	Times      map[baseline.System]sim.Duration
	Throughput map[baseline.System]float64 // block ops per ms
}

// Figure10a reproduces the vta-bench throughput comparison on the NPU.
func Figure10a() ([]Fig10aRow, error) {
	var rows []Fig10aRow
	for _, b := range vtabench.All() {
		row := Fig10aRow{
			Benchmark:  b.Name,
			Times:      make(map[baseline.System]sim.Duration),
			Throughput: make(map[baseline.System]float64),
		}
		for _, system := range NPUSystems {
			b := b
			var ops int
			d, err := runOnNPUSystem(system, func(p *sim.Proc, o accel.NPU) error {
				n, err := b.Run(p, o)
				ops = n
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("fig10a %s on %s: %w", b.Name, system, err)
			}
			row.Ops = ops
			row.Times[system] = d
			row.Throughput[system] = float64(ops) / d.Milliseconds()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure10a formats vta-bench throughputs.
func RenderFigure10a(rows []Fig10aRow) *Table {
	t := &Table{
		Title:   "Figure 10a: vta-bench throughput (NPU block ops / ms)",
		Columns: []string{"benchmark", "native", "trustzone", "cronus", "cronus/native"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Benchmark,
			fmt.Sprintf("%.1f", r.Throughput[baseline.Native]),
			fmt.Sprintf("%.1f", r.Throughput[baseline.TrustZone]),
			fmt.Sprintf("%.1f", r.Throughput[baseline.CRONUS]),
			fmt.Sprintf("%.3f", r.Throughput[baseline.CRONUS]/r.Throughput[baseline.Native]),
		})
	}
	return t
}

// Fig10bRow is one DNN inference latency measurement.
type Fig10bRow struct {
	Model      string
	NPULatency map[baseline.System]sim.Duration
	CPULatency sim.Duration
}

// Figure10b reproduces the TVM inference latency comparison: ResNet18,
// ResNet50 and YoloV3 on the (simulated) NPU under each system, plus the
// CPU-enclave fallback.
func Figure10b() ([]Fig10bRow, error) {
	var rows []Fig10bRow
	for _, g := range tvm.InferenceGraphs() {
		row := Fig10bRow{Model: g.Name, NPULatency: make(map[baseline.System]sim.Duration)}
		for _, system := range NPUSystems {
			g := g
			var lat sim.Duration // inference only, excluding compilation
			_, err := runOnNPUSystem(system, func(p *sim.Proc, o accel.NPU) error {
				e, err := tvm.Compile(p, o, g)
				if err != nil {
					return err
				}
				input := make([]byte, e.InLen)
				start := p.Now()
				if _, err := e.Infer(p, input); err != nil {
					return err
				}
				lat = sim.Duration(p.Now() - start)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("fig10b %s on %s: %w", g.Name, system, err)
			}
			row.NPULatency[system] = lat
		}
		// CPU fallback latency.
		k := sim.NewKernel()
		k.Spawn("cpu", func(p *sim.Proc) {
			defer k.Stop()
			row.CPULatency = tvm.CPUInfer(p, g)
		})
		if err := k.Run(); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure10b formats inference latencies.
func RenderFigure10b(rows []Fig10bRow) *Table {
	t := &Table{
		Title:   "Figure 10b: DNN inference latency (ms; NPU is the fsim-style simulator)",
		Columns: []string{"model", "cpu", "npu native", "npu trustzone", "npu cronus"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Model,
			ms(r.CPULatency),
			ms(r.NPULatency[baseline.Native]),
			ms(r.NPULatency[baseline.TrustZone]),
			ms(r.NPULatency[baseline.CRONUS]),
		})
	}
	return t
}
