package experiments

import (
	"fmt"

	"cronus/internal/core"
	"cronus/internal/sim"
	"cronus/internal/spm"
)

// HangDetectionRow is one watchdog configuration: the heartbeat policy, its
// analytic worst-case detection bound, and the latency actually measured
// from wedging an mOS heartbeat publisher to the watchdog's FailHang.
type HangDetectionRow struct {
	HeartbeatEvery sim.Duration
	MissedBeats    int
	Bound          sim.Duration
	Measured       sim.Duration
}

// HangDetectionSweep measures watchdog detection latency across heartbeat
// periods and missed-beat budgets: boot a platform with supervision enabled,
// wedge the GPU mOS's heartbeat publisher at a known off-grid instant, and
// record the FailHang the watchdog raises. Every measured latency must sit
// within the analytic bound (period × (missed beats + 2)); the renderer
// flags any row that escapes it.
func HangDetectionSweep() ([]HangDetectionRow, error) {
	policies := []spm.Supervision{
		{HeartbeatEvery: 100 * sim.Microsecond, MissedBeats: 2},
		{HeartbeatEvery: 200 * sim.Microsecond, MissedBeats: 3},
		{HeartbeatEvery: 500 * sim.Microsecond, MissedBeats: 3},
		{HeartbeatEvery: sim.Millisecond, MissedBeats: 5},
	}
	var rows []HangDetectionRow
	for _, pol := range policies {
		pol := pol
		row := HangDetectionRow{HeartbeatEvery: pol.HeartbeatEvery, MissedBeats: pol.MissedBeats}
		err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
			pl.SPM.SetSupervision(pol)
			row.Bound = pl.SPM.HangDetectionBound()
			var failedAt sim.Time
			unsub := pl.SPM.OnFailure(func(rec *spm.FailureRecord) {
				if failedAt == 0 && rec.Reason == spm.FailHang {
					failedAt = rec.FailedAt
				}
			})
			defer unsub()
			os := pl.GPUs[0].OS
			os.StartHeartbeat(pol.HeartbeatEvery)
			pl.SPM.StartWatchdog()
			// Let beats land so the watchdog has observed progress, then
			// wedge off-phase from the poll grid — the worst case the bound
			// budgets for.
			p.Sleep(10*pol.HeartbeatEvery + 30*sim.Microsecond)
			if !os.InjectWedge() {
				return fmt.Errorf("wedge refused (partition not ready)")
			}
			wedgedAt := p.Now()
			p.Sleep(2 * row.Bound)
			if failedAt == 0 {
				return fmt.Errorf("watchdog never detected the wedge")
			}
			row.Measured = sim.Duration(failedAt - wedgedAt)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("hang-detection sweep (period %s, k %d): %w",
				pol.HeartbeatEvery, pol.MissedBeats, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderHangDetectionSweep formats the watchdog detection-latency table.
func RenderHangDetectionSweep(rows []HangDetectionRow) *Table {
	t := &Table{
		Title: "Watchdog hang detection: analytic bound vs measured latency",
		Columns: []string{"heartbeat", "missed beats", "bound", "measured", "within"},
	}
	for _, r := range rows {
		within := "yes"
		if r.Measured > r.Bound {
			within = "NO"
		}
		t.Rows = append(t.Rows, []string{
			r.HeartbeatEvery.String(),
			fmt.Sprintf("%d", r.MissedBeats),
			r.Bound.String(),
			r.Measured.String(),
			within,
		})
	}
	return t
}
