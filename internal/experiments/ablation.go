package experiments

import (
	"fmt"

	"cronus/internal/baseline"
	"cronus/internal/core"
	"cronus/internal/gpu"
	"cronus/internal/mos/driver"
	"cronus/internal/sim"
	"cronus/internal/workload/rodinia"
)

// This file holds the ablations for the design choices DESIGN.md calls out:
// ① streaming (async EDL flags) vs forcing every mECall synchronous,
// ② sRPC ring size vs large-transfer throughput,
// ③ sensitivity of each system to the S-EL2 context-switch cost.

// AblationStreamingRow compares sRPC with and without streaming on one
// launch-heavy workload.
type AblationStreamingRow struct {
	Mode  string
	Total sim.Duration
}

// syncForcedCUDA wraps a CUDAConn forcing every call onto the synchronous
// path — ablating exactly the async EDL classification (§IV-C).
type syncForcedCUDA struct {
	inner *core.CUDAConn
}

func (s *syncForcedCUDA) MemAlloc(p *sim.Proc, n uint64) (uint64, error) {
	return s.inner.MemAlloc(p, n)
}
func (s *syncForcedCUDA) MemFree(p *sim.Proc, ptr uint64) error {
	_, err := s.inner.Client().CallSyncCap(p, driver.CallMemFree, driver.EncodeMemFree(ptr), 16)
	return err
}
func (s *syncForcedCUDA) HtoD(p *sim.Proc, dst uint64, data []byte) error {
	_, err := s.inner.Client().CallSyncCap(p, driver.CallHtoD, driver.EncodeHtoD(dst, data), 16)
	return err
}
func (s *syncForcedCUDA) DtoH(p *sim.Proc, src uint64, n int) ([]byte, error) {
	return s.inner.DtoH(p, src, n)
}
func (s *syncForcedCUDA) Launch(p *sim.Proc, kernel string, grid gpu.Dim, args ...uint64) error {
	_, err := s.inner.Client().CallSyncCap(p, driver.CallLaunch, driver.EncodeLaunch(kernel, grid, args...), 16)
	return err
}
func (s *syncForcedCUDA) Sync(p *sim.Proc) error  { return s.inner.Sync(p) }
func (s *syncForcedCUDA) Close(p *sim.Proc) error { return s.inner.Close(p) }

// AblationStreaming runs the launch-heaviest Rodinia workload (gaussian)
// with streaming on and off.
func AblationStreaming() ([]AblationStreamingRow, error) {
	b, err := rodinia.ByName("gaussian")
	if err != nil {
		return nil, err
	}
	run := func(forceSync bool) (sim.Duration, error) {
		var elapsed sim.Duration
		err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
			rodinia.RegisterKernels(pl.GPUs[0].Dev.SMs())
			s, err := pl.NewSession(p, "ablate")
			if err != nil {
				return err
			}
			conn, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: b.Cubin(), RingPages: 65})
			if err != nil {
				return err
			}
			defer conn.Close(p)
			start := p.Now()
			if forceSync {
				err = b.Run(p, &syncForcedCUDA{inner: conn})
			} else {
				err = b.Run(p, conn)
			}
			if err != nil {
				return err
			}
			elapsed = sim.Duration(p.Now() - start)
			return nil
		})
		return elapsed, err
	}
	stream, err := run(false)
	if err != nil {
		return nil, err
	}
	forced, err := run(true)
	if err != nil {
		return nil, err
	}
	return []AblationStreamingRow{
		{Mode: "sRPC streaming (async EDL flags)", Total: stream},
		{Mode: "sRPC forced lock-step (all sync)", Total: forced},
	}, nil
}

// RenderAblationStreaming formats ablation ①.
func RenderAblationStreaming(rows []AblationStreamingRow) *Table {
	t := &Table{
		Title:   "Ablation: streaming vs forced-synchronous sRPC (gaussian)",
		Columns: []string{"mode", "total(ms)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Mode, ms(r.Total)})
	}
	return t
}

// AblationRingRow is one ring-size measurement.
type AblationRingRow struct {
	RingPages int
	Transfer  sim.Duration // time to stream a fixed payload HtoD
}

// AblationRingSize sweeps the smem size against a 1 MiB streamed upload:
// small rings stall on flow control; past the working set the ring stops
// mattering (why DefaultPages is modest).
func AblationRingSize() ([]AblationRingRow, error) {
	const payload = 1 << 20
	var rows []AblationRingRow
	for _, pages := range []int{5, 17, 65, 257} {
		var elapsed sim.Duration
		pages := pages
		err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
			s, err := pl.NewSession(p, "ring")
			if err != nil {
				return err
			}
			conn, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add"), RingPages: pages})
			if err != nil {
				return err
			}
			defer conn.Close(p)
			ptr, err := conn.MemAlloc(p, payload)
			if err != nil {
				return err
			}
			data := make([]byte, payload)
			start := p.Now()
			if err := conn.HtoD(p, ptr, data); err != nil {
				return err
			}
			if err := conn.Sync(p); err != nil {
				return err
			}
			elapsed = sim.Duration(p.Now() - start)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("ring %d pages: %w", pages, err)
		}
		rows = append(rows, AblationRingRow{RingPages: pages, Transfer: elapsed})
	}
	return rows, nil
}

// RenderAblationRingSize formats ablation ②.
func RenderAblationRingSize(rows []AblationRingRow) *Table {
	t := &Table{
		Title:   "Ablation: sRPC ring size vs 1 MiB streamed upload",
		Columns: []string{"ring pages", "smem KiB", "transfer(ms)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.RingPages),
			fmt.Sprintf("%d", r.RingPages*4),
			ms(r.Transfer),
		})
	}
	return t
}

// AblationSwitchRow is one context-switch-cost measurement.
type AblationSwitchRow struct {
	SwitchCost sim.Duration
	CRONUS     sim.Duration
	HIX        sim.Duration
}

// AblationSwitchCost sweeps the S-EL2 context-switch cost and measures one
// gaussian pass on CRONUS and HIX-TrustZone: HIX pays the switches on every
// hardware control message; sRPC's whole point is that streamed calls
// don't (§IV-C).
func AblationSwitchCost() ([]AblationSwitchRow, error) {
	b, err := rodinia.ByName("gaussian")
	if err != nil {
		return nil, err
	}
	var rows []AblationSwitchRow
	for _, mult := range []int{1, 2, 4, 8} {
		costs := sim.DefaultCosts()
		costs.ContextSwitchS2 *= sim.Duration(mult)
		costs.WorldSwitch *= sim.Duration(mult)

		// CRONUS with the inflated costs.
		var cronus sim.Duration
		cfg := core.DefaultConfig()
		cfg.Costs = costs
		err := core.Run(cfg, func(pl *core.Platform, p *sim.Proc) error {
			rodinia.RegisterKernels(pl.GPUs[0].Dev.SMs())
			s, err := pl.NewSession(p, "switch")
			if err != nil {
				return err
			}
			conn, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: b.Cubin(), RingPages: 65})
			if err != nil {
				return err
			}
			defer conn.Close(p)
			start := p.Now()
			if err := b.Run(p, conn); err != nil {
				return err
			}
			cronus = sim.Duration(p.Now() - start)
			return nil
		})
		if err != nil {
			return nil, err
		}

		// HIX with the same inflated costs.
		var hix sim.Duration
		k := sim.NewKernel()
		var fail error
		k.Spawn("main", func(p *sim.Proc) {
			defer k.Stop()
			dev := gpu.New(k, costs, gpu.Config{Name: "gpu0", MemBytes: 1 << 30, SMs: 46, CopyEngs: 2, MPS: true, KeySeed: "abl"})
			gpu.RegisterStdKernels(dev.SMs())
			rodinia.RegisterKernels(dev.SMs())
			ops, err := baseline.NewHIXCUDA(dev, costs, b.Cubin())
			if err != nil {
				fail = err
				return
			}
			start := p.Now()
			if err := b.Run(p, ops); err != nil {
				fail = err
				return
			}
			hix = sim.Duration(p.Now() - start)
		})
		if err := k.Run(); err != nil {
			return nil, err
		}
		if fail != nil {
			return nil, fail
		}
		rows = append(rows, AblationSwitchRow{
			SwitchCost: costs.ContextSwitchS2,
			CRONUS:     cronus,
			HIX:        hix,
		})
	}
	return rows, nil
}

// RenderAblationSwitchCost formats ablation ③.
func RenderAblationSwitchCost(rows []AblationSwitchRow) *Table {
	t := &Table{
		Title:   "Ablation: S-EL2 context-switch cost sensitivity (gaussian)",
		Columns: []string{"switch cost(us)", "cronus(ms)", "hix-trustzone(ms)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", float64(r.SwitchCost)/1e3),
			ms(r.CRONUS), ms(r.HIX),
		})
	}
	return t
}
