package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"cronus/internal/baseline"
	"cronus/internal/core"
	"cronus/internal/sim"
	"cronus/internal/spm"
)

// Table1 reproduces the requirement matrix (Table I): which of R1 (general
// accelerators, no hardware customization), R2 (spatial sharing), R3.1
// (fault isolation) and R3.2 (security isolation) each implemented system
// provides.
func Table1() *Table {
	t := &Table{
		Title:   "Table I: requirement matrix (implemented systems)",
		Columns: []string{"system", "R1 general", "R2 spatial", "R3.1 fault-iso", "R3.2 security-iso"},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, s := range []baseline.System{baseline.Native, baseline.TrustZone, baseline.HIX, baseline.CRONUS} {
		r1, r2, r31, r32, err := baseline.Describe(s)
		if err != nil {
			continue
		}
		t.Rows = append(t.Rows, []string{string(s), mark(r1), mark(r2), mark(r31), mark(r32)})
	}
	return t
}

// Table2 reproduces the prototype configuration (Table II) from the live
// platform.
func Table2() (*Table, error) {
	t := &Table{
		Title:   "Table II: prototyped system configuration",
		Columns: []string{"component", "value"},
	}
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		t.Rows = append(t.Rows,
			[]string{"secure memory", fmt.Sprintf("%d MiB (TZASC-protected)", pl.M.Mem.Region("secure").Size>>20)},
			[]string{"normal memory", fmt.Sprintf("%d MiB", pl.M.Mem.Region("normal").Size>>20)},
		)
		for _, g := range pl.GPUs {
			t.Rows = append(t.Rows, []string{"gpu " + g.Dev.Name(),
				fmt.Sprintf("%.0f SMs, %d MiB, MPS=%v (Turing-class model)", g.Dev.SMs(), g.Dev.MemBytes()>>20, g.Dev.MPS())})
		}
		for _, n := range pl.NPUs {
			t.Rows = append(t.Rows, []string{"npu " + n.Dev.Name(),
				fmt.Sprintf("VTA-compatible fsim, %d MiB DRAM", n.Dev.MemBytes()>>20)})
		}
		for _, part := range pl.SPM.Partitions() {
			dev := part.Device
			if dev == "" {
				dev = "(cpu)"
			}
			t.Rows = append(t.Rows, []string{"partition " + part.Name, "device " + dev})
		}
		t.Rows = append(t.Rows,
			[]string{"attestation", "Ed25519 RoT -> AtK -> report; X25519 secret_dhke"},
			[]string{"mOS restart", fmt.Sprintf("%.0f ms (device clear + reload)", (pl.Costs.DeviceClear + pl.Costs.MOSRestart).Milliseconds())},
			[]string{"machine reboot", fmt.Sprintf("%.0f s (monolithic recovery)", pl.Costs.MachineReboot.Seconds())},
		)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// tcbComponent maps a Table III row to the repository packages whose line
// counts stand for that component's TCB.
type tcbComponent struct {
	Name     string
	Packages []string
}

// Table3 reproduces the TCB accounting (Table III): lines of code per
// mEnclave kind and shared infrastructure, counted from this repository's
// sources. The paper's point — each PaaS service trusts only its own mOS
// stack rather than one monolithic OS containing every driver — is shown by
// the per-component split plus the "monolithic total" row.
func Table3() (*Table, error) {
	root, err := repoRoot()
	if err != nil {
		return nil, err
	}
	comps := []tcbComponent{
		{"CPU mOS (optee-style)", []string{"internal/mos", "internal/mos/driver"}},
		{"GPU mOS (nouveau+gdev-style)", []string{"internal/gpu"}},
		{"NPU mOS (vta fsim-style)", []string{"internal/npu"}},
		{"mEnclave Manager", []string{"internal/enclave"}},
		{"sRPC", []string{"internal/srpc"}},
		{"SPM + attestation (shared TCB)", []string{"internal/spm", "internal/attest"}},
	}
	t := &Table{
		Title:   "Table III: lines of code per TCB component (this repository)",
		Columns: []string{"component", "LoC"},
	}
	total := 0
	for _, c := range comps {
		n := 0
		for _, pkg := range c.Packages {
			loc, err := countGoLines(filepath.Join(root, pkg))
			if err != nil {
				return nil, err
			}
			n += loc
		}
		total += n
		t.Rows = append(t.Rows, []string{c.Name, fmt.Sprintf("%d", n)})
	}
	t.Rows = append(t.Rows, []string{"monolithic total (what one TEE OS would carry)", fmt.Sprintf("%d", total)})
	return t, nil
}

// repoRoot locates the module root from this source file's path.
func repoRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("experiments: cannot locate sources")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file))), nil
}

// countGoLines counts non-test Go source lines (excluding blanks) in a
// directory.
func countGoLines(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) != "" {
				total++
			}
		}
		f.Close()
	}
	return total, nil
}

// RecoveryRow is one system's recovery time after an accelerator fault.
type RecoveryRow struct {
	System   baseline.System
	Recovery sim.Duration
	Measured bool // measured from a live failover (CRONUS) vs modelled
}

// RecoveryTimes measures CRONUS's mOS restart against the monolithic
// systems' machine reboot (§VI-D).
func RecoveryTimes() ([]RecoveryRow, error) {
	costs := sim.DefaultCosts()
	var cronusMeasured sim.Duration
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		rec := pl.SPM.Fail(pl.GPUs[0].Part, spm.FailPanic)
		pl.SPM.AwaitReady(p, pl.GPUs[0].Part)
		cronusMeasured = rec.Downtime()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return []RecoveryRow{
		{System: baseline.CRONUS, Recovery: cronusMeasured, Measured: true},
		{System: baseline.TrustZone, Recovery: baseline.RecoveryTime(baseline.TrustZone, costs)},
		{System: baseline.HIX, Recovery: baseline.RecoveryTime(baseline.HIX, costs)},
		{System: baseline.Native, Recovery: baseline.RecoveryTime(baseline.Native, costs)},
	}, nil
}

// RenderRecovery formats the recovery comparison.
func RenderRecovery(rows []RecoveryRow) *Table {
	t := &Table{
		Title:   "Recovery time after an accelerator-stack fault (§VI-D)",
		Columns: []string{"system", "recovery", "method"},
	}
	for _, r := range rows {
		method := "whole-machine reboot (modelled)"
		if r.Measured {
			method = "mOS restart (measured failover)"
		}
		t.Rows = append(t.Rows, []string{string(r.System), fmt.Sprintf("%.0f ms", r.Recovery.Milliseconds()), method})
	}
	return t
}
