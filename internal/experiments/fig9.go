package experiments

import (
	"errors"
	"fmt"

	"cronus/internal/baseline"
	"cronus/internal/core"
	"cronus/internal/gpu"
	"cronus/internal/sim"
	"cronus/internal/spm"
)

// fig9Kernel is the matrix-computing task kernel: a fixed-cost launch
// standing in for the FVP experiment's recorded GPU execution times (§VI-D).
const fig9Kernel = "fig9_matrix_task"

func registerFig9Kernel(sms float64) {
	gpu.Register(&gpu.Kernel{
		Name: fig9Kernel,
		Cost: func(gpu.Dim, []uint64) gpu.LaunchCost {
			return gpu.LaunchCost{Work: 2 * sim.Millisecond, SMDemand: sms * 0.6}
		},
		Func: func(e *gpu.Exec) error {
			buf, err := e.Bytes(e.Arg(0), 64)
			if err != nil {
				return err
			}
			f := gpu.F32(buf)
			f.Set(0, f.Get(0)+1)
			return nil
		},
	})
}

// Fig9Result is the failover timeline: completions per bucket for the two
// tasks, plus the measured recovery characteristics.
type Fig9Result struct {
	BucketMS     float64
	Buckets      int
	TaskA, TaskB []int
	CrashAt      sim.Time
	ReadyAt      sim.Time // partition recovered (r_f back to 0)
	ResumedAt    sim.Time // task B's first completion after resubmission
	MOSDowntime  sim.Duration
	RebootTime   sim.Duration // what the monolithic systems would pay
}

// Figure9 reproduces the failover experiment: two matrix tasks in separate
// S-EL2 partitions; one partition is crashed mid-run; CRONUS recovers only
// that partition with the proceed-trap procedure while the other task is
// undisturbed; the failed task is resubmitted once the mOS restarts.
func Figure9() (*Fig9Result, error) {
	const bucket = 50 * sim.Millisecond
	const horizon = 1200 * sim.Millisecond
	const crashAt = 300 * sim.Millisecond
	res := &Fig9Result{
		BucketMS: bucket.Milliseconds(),
		Buckets:  int(horizon / bucket),
	}
	res.TaskA = make([]int, res.Buckets)
	res.TaskB = make([]int, res.Buckets)

	err := core.Run(func() core.Config {
		cfg := core.DefaultConfig()
		cfg.GPUs = 2
		return cfg
	}(), func(pl *core.Platform, p *sim.Proc) error {
		registerFig9Kernel(pl.GPUs[0].Dev.SMs())
		res.RebootTime = baseline.RecoveryTime(baseline.TrustZone, pl.Costs)
		k := pl.K
		wg := sim.NewWaitGroup(k)

		runTask := func(name, partition string, series []int, restartable bool) {
			wg.Add(1)
			k.Spawn(name, func(tp *sim.Proc) {
				defer wg.Done()
				s, err := pl.NewSession(tp, name)
				if err != nil {
					return
				}
				connect := func() (*core.CUDAConn, uint64, error) {
					c, err := s.OpenCUDA(tp, core.CUDAOptions{
						Cubin: gpu.BuildCubin(fig9Kernel), Partition: partition,
						Name: fmt.Sprintf("%s-%d", name, tp.Now()),
					})
					if err != nil {
						return nil, 0, err
					}
					ptr, err := c.MemAlloc(tp, 64)
					return c, ptr, err
				}
				conn, ptr, err := connect()
				if err != nil {
					return
				}
				for tp.Now() < sim.Time(horizon) {
					err := conn.Launch(tp, fig9Kernel, gpu.Dim{1, 1, 1}, ptr)
					if err == nil {
						err = conn.Sync(tp)
					}
					if err != nil {
						if !restartable {
							return
						}
						// The partition failed: wait for the SPM to
						// finish the mOS restart, then resubmit.
						part := pl.GPUs[1].Part
						pl.SPM.AwaitReady(tp, part)
						tp.Sleep(time500us())
						conn, ptr, err = connect()
						if err != nil {
							var pf *spm.PeerFault
							if errors.As(err, &pf) {
								continue
							}
							return
						}
						continue
					}
					b := int(tp.Now() / sim.Time(bucket))
					if b >= 0 && b < len(series) {
						series[b]++
					}
					if restartable && res.ResumedAt == 0 && tp.Now() > res.CrashAt && res.CrashAt > 0 {
						res.ResumedAt = tp.Now()
					}
				}
			})
		}
		runTask("task-a", "gpu-part0", res.TaskA, false)
		runTask("task-b", "gpu-part1", res.TaskB, true)

		// Crash injector.
		k.Spawn("crash", func(cp *sim.Proc) {
			cp.Sleep(crashAt)
			res.CrashAt = cp.Now()
			rec := pl.SPM.Fail(pl.GPUs[1].Part, spm.FailPanic)
			if rec != nil {
				pl.SPM.AwaitReady(cp, pl.GPUs[1].Part)
				res.ReadyAt = cp.Now()
				res.MOSDowntime = rec.Downtime()
			}
		})

		wg.Wait(p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func time500us() sim.Duration { return 500 * sim.Microsecond }

// RenderFigure9 formats the throughput timeline.
func RenderFigure9(r *Fig9Result) *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure 9: failover timeline (crash at %.0fms; mOS restart %.0fms vs reboot %.0fms)",
			float64(r.CrashAt)/1e6, r.MOSDowntime.Milliseconds(), r.RebootTime.Milliseconds()),
		Columns: []string{"bucket(ms)", "task-a completions", "task-b completions"},
	}
	for i := 0; i < r.Buckets; i++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f-%.0f", float64(i)*r.BucketMS, float64(i+1)*r.BucketMS),
			fmt.Sprintf("%d", r.TaskA[i]),
			fmt.Sprintf("%d", r.TaskB[i]),
		})
	}
	return t
}
