package experiments

import (
	"strings"
	"testing"

	"cronus/internal/baseline"
	"cronus/internal/sim"
)

func TestFigure7ShapeMatchesPaper(t *testing.T) {
	rows, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("%d benchmarks, want 11", len(rows))
	}
	for _, r := range rows {
		// CRONUS within the paper's ≤7.1% band (plus simulation slack).
		if ov := r.Normalized[baseline.CRONUS]; ov > 1.09 {
			t.Errorf("%s: CRONUS %.3fx native, outside band", r.Benchmark, ov)
		}
		if r.Normalized[baseline.HIX] <= r.Normalized[baseline.CRONUS] {
			t.Errorf("%s: HIX not slower than CRONUS", r.Benchmark)
		}
		if r.Normalized[baseline.TrustZone] < 1.0 {
			t.Errorf("%s: TrustZone beat native", r.Benchmark)
		}
	}
	out := RenderFigure7(rows).String()
	if !strings.Contains(out, "gaussian") {
		t.Error("render missing benchmark rows")
	}
}

func TestFigure8ShapeMatchesPaper(t *testing.T) {
	rows, err := Figure8(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d models, want 4", len(rows))
	}
	for _, r := range rows {
		if ov := r.Overhead[baseline.CRONUS]; ov > 0.15 || ov < 0 {
			t.Errorf("%s: CRONUS overhead %.1f%% outside band", r.Model, 100*ov)
		}
		if r.Times[baseline.HIX] <= r.Times[baseline.CRONUS] {
			t.Errorf("%s: HIX not slower than CRONUS", r.Model)
		}
	}
	_ = RenderFigure8(rows)
}

func TestFigure9FailoverTimeline(t *testing.T) {
	r, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if r.CrashAt == 0 || r.ReadyAt <= r.CrashAt {
		t.Fatalf("crash/recovery not recorded: crash=%v ready=%v", r.CrashAt, r.ReadyAt)
	}
	// Recovery in hundreds of ms, orders of magnitude under a reboot.
	if r.MOSDowntime > sim.Second || r.MOSDowntime < 50*sim.Millisecond {
		t.Errorf("mOS downtime %v not in the hundreds-of-ms band", r.MOSDowntime)
	}
	if float64(r.MOSDowntime) > float64(r.RebootTime)/50 {
		t.Error("mOS restart not dramatically faster than reboot")
	}
	crashBucket := int(float64(r.CrashAt) / 1e6 / r.BucketMS)
	// Task A (healthy partition) keeps completing right through the crash.
	for i := crashBucket; i < crashBucket+4 && i < r.Buckets; i++ {
		if r.TaskA[i] == 0 {
			t.Errorf("task A stalled in bucket %d despite fault isolation", i)
		}
	}
	// Task B stops at the crash and resumes after recovery+resubmission.
	if r.TaskB[crashBucket+1] != 0 {
		t.Error("task B kept completing while its partition was down")
	}
	resumed := false
	for i := crashBucket + 2; i < r.Buckets; i++ {
		if r.TaskB[i] > 0 {
			resumed = true
			break
		}
	}
	if !resumed {
		t.Error("task B never resumed after recovery")
	}
	_ = RenderFigure9(r)
}

func TestFigure10aShape(t *testing.T) {
	rows, err := Figure10a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d benchmarks", len(rows))
	}
	for _, r := range rows {
		native := r.Throughput[baseline.Native]
		cronus := r.Throughput[baseline.CRONUS]
		if cronus > native {
			t.Errorf("%s: CRONUS throughput above native", r.Benchmark)
		}
		if cronus < 0.85*native {
			t.Errorf("%s: CRONUS throughput %.2f of native, below band", r.Benchmark, cronus/native)
		}
	}
	_ = RenderFigure10a(rows)
}

func TestFigure10bShape(t *testing.T) {
	rows, err := Figure10b()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d models", len(rows))
	}
	for _, r := range rows {
		native := r.NPULatency[baseline.Native]
		cronus := r.NPULatency[baseline.CRONUS]
		if float64(cronus) > 1.1*float64(native) {
			t.Errorf("%s: CRONUS %.3fx native on NPU", r.Model, float64(cronus)/float64(native))
		}
		if r.CPULatency <= 0 {
			t.Errorf("%s: no CPU latency", r.Model)
		}
	}
	_ = RenderFigure10b(rows)
}

func TestFigure11aSpatialSharingGain(t *testing.T) {
	rows, err := Figure11a(12 * sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var one, two, four Fig11aRow
	for _, r := range rows {
		switch r.Tenants {
		case 1:
			one = r
		case 2:
			two = r
		case 4:
			four = r
		}
	}
	// Two tenants sharing spatially must beat temporal sharing
	// substantially (paper: up to 63.4%).
	if two.SpatialGainPct < 15 {
		t.Errorf("2 tenants: spatial gain only %.1f%%", two.SpatialGainPct)
	}
	// Aggregate throughput grows from 1 to 2 tenants.
	if two.SpatialSteps <= one.SpatialSteps {
		t.Errorf("aggregate throughput did not grow with 2 tenants: %d vs %d", two.SpatialSteps, one.SpatialSteps)
	}
	// At 4 tenants contention bites: per-tenant throughput degrades.
	if four.SpatialSteps/4 >= two.SpatialSteps/2 {
		t.Errorf("no contention at 4 tenants: per-tenant %d vs %d", four.SpatialSteps/4, two.SpatialSteps/2)
	}
	_ = RenderFigure11a(rows)
}

func TestFigure11bSharingModes(t *testing.T) {
	rows, err := Figure11b(3)
	if err != nil {
		t.Fatal(err)
	}
	get := func(gpus int, mode ShareMode) sim.Duration {
		for _, r := range rows {
			if r.GPUs == gpus && r.Mode == mode {
				return r.PerStep
			}
		}
		t.Fatalf("missing row %d/%s", gpus, mode)
		return 0
	}
	// P2P over PCIe is the fastest sharing mechanism (Figure 11b).
	for _, gpus := range []int{2, 4} {
		p2p := get(gpus, ShareP2P)
		sec := get(gpus, ShareSecureMem)
		enc := get(gpus, ShareEncrypted)
		if !(p2p < sec && sec < enc) {
			t.Errorf("%d GPUs: ordering p2p=%v secure=%v encrypted=%v wrong", gpus, p2p, sec, enc)
		}
	}
	_ = RenderFigure11b(rows)
}

func TestSRPCMicroOrdering(t *testing.T) {
	rows, err := SRPCMicro(100, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	stream, syncr, lock := rows[0].PerCall, rows[1].PerCall, rows[2].PerCall
	if !(stream < syncr && syncr < lock) {
		t.Errorf("per-call ordering wrong: stream=%v sync=%v lockstep=%v", stream, syncr, lock)
	}
	// Streaming must be dramatically cheaper than lock-step.
	if float64(lock) < 5*float64(stream) {
		t.Errorf("lock-step only %.1fx streaming", float64(lock)/float64(stream))
	}
	_ = RenderSRPCMicro(rows)
}

func TestTables(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 4 {
		t.Fatalf("Table I rows = %d", len(t1.Rows))
	}
	// CRONUS is the only all-yes row.
	for _, r := range t1.Rows {
		allYes := r[1] == "yes" && r[2] == "yes" && r[3] == "yes" && r[4] == "yes"
		if (r[0] == string(baseline.CRONUS)) != allYes {
			t.Errorf("Table I row %v wrong", r)
		}
	}
	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t2.String(), "gpu0") {
		t.Error("Table II missing GPU row")
	}
	t3, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) < 6 {
		t.Errorf("Table III rows = %d", len(t3.Rows))
	}
	if !strings.Contains(t3.String(), "monolithic total") {
		t.Error("Table III missing monolithic total")
	}
}

func TestRecoveryTimes(t *testing.T) {
	rows, err := RecoveryTimes()
	if err != nil {
		t.Fatal(err)
	}
	var cronus, reboot sim.Duration
	for _, r := range rows {
		if r.System == baseline.CRONUS {
			cronus = r.Recovery
		}
		if r.System == baseline.TrustZone {
			reboot = r.Recovery
		}
	}
	if cronus <= 0 || reboot <= 0 {
		t.Fatal("missing rows")
	}
	if float64(cronus) > float64(reboot)/100 {
		t.Errorf("cronus recovery %v vs reboot %v: not 2+ orders faster", cronus, reboot)
	}
	_ = RenderRecovery(rows)
}

// The simulation's determinism claim: running the same experiment twice
// yields bit-identical results (no map-iteration or host-scheduling order
// may leak into virtual-time behaviour).
func TestFailoverExperimentIsDeterministic(t *testing.T) {
	a, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if a.CrashAt != b.CrashAt || a.ReadyAt != b.ReadyAt || a.MOSDowntime != b.MOSDowntime {
		t.Fatalf("timings differ: %+v vs %+v", a, b)
	}
	for i := range a.TaskA {
		if a.TaskA[i] != b.TaskA[i] || a.TaskB[i] != b.TaskB[i] {
			t.Fatalf("bucket %d differs: A %d/%d, B %d/%d", i, a.TaskA[i], b.TaskA[i], a.TaskB[i], b.TaskB[i])
		}
	}
}
