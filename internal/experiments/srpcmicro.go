package experiments

import (
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/core"
	"cronus/internal/enclave"
	"cronus/internal/gpu"
	"cronus/internal/metrics"
	"cronus/internal/mos"
	"cronus/internal/mos/driver"
	"cronus/internal/sim"
)

// SRPCMicroRow is one RPC-mechanism measurement. MECalls and Bytes are read
// back from the metrics registry (snapshot deltas around each phase) rather
// than counted by the benchmark loop, so the table reports what the transport
// actually did.
type SRPCMicroRow struct {
	Mechanism string
	Calls     int
	Payload   int
	Total     sim.Duration
	PerCall   sim.Duration
	MECalls   uint64 // mECalls observed by the transport during the phase
	Bytes     uint64 // bytes through trusted shared memory during the phase
}

// SRPCMicro measures the cost of issuing n back-to-back mECalls under the
// three inter-enclave RPC mechanisms the paper discusses (§II-C, §IV-C):
// streaming sRPC (asynchronous, trusted shared memory), synchronous sRPC
// (each call waits for its result), and lock-step sealed RPC over untrusted
// memory (the synchronous approach).
func SRPCMicro(calls, payload int) ([]SRPCMicroRow, error) {
	if calls <= 0 {
		calls = 200
	}
	if payload <= 0 {
		payload = 256
	}
	var rows []SRPCMicroRow
	data := make([]byte, payload)

	// Deltas need a recording registry; restore the caller's choice after.
	wasEnabled := metrics.Default.Enabled()
	metrics.Default.Enable()
	defer func() {
		if !wasEnabled {
			metrics.Default.Disable()
		}
	}()

	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "micro")
		if err != nil {
			return err
		}
		conn, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add"), RingPages: 65})
		if err != nil {
			return err
		}
		defer conn.Close(p)
		ptr, err := conn.MemAlloc(p, uint64(payload))
		if err != nil {
			return err
		}

		// ① Streaming (async) sRPC.
		pre := metrics.Default.Snapshot()
		start := p.Now()
		for i := 0; i < calls; i++ {
			if err := conn.HtoD(p, ptr, data); err != nil {
				return err
			}
		}
		if err := conn.Sync(p); err != nil {
			return err
		}
		total := sim.Duration(p.Now() - start)
		post := metrics.Default.Snapshot()
		rows = append(rows, SRPCMicroRow{
			Mechanism: "sRPC streaming", Calls: calls, Payload: payload,
			Total: total, PerCall: total / sim.Duration(calls),
			MECalls: post.CounterDelta(pre, "srpc.calls"),
			Bytes:   post.CounterDelta(pre, "srpc.bytes_moved"),
		})

		// ② Synchronous sRPC (wait for each result).
		pre = metrics.Default.Snapshot()
		start = p.Now()
		for i := 0; i < calls; i++ {
			if _, err := conn.DtoH(p, ptr, payload); err != nil {
				return err
			}
		}
		total = sim.Duration(p.Now() - start)
		post = metrics.Default.Snapshot()
		rows = append(rows, SRPCMicroRow{
			Mechanism: "sRPC synchronous", Calls: calls, Payload: payload,
			Total: total, PerCall: total / sim.Duration(calls),
			MECalls: post.CounterDelta(pre, "srpc.calls"),
			Bytes:   post.CounterDelta(pre, "srpc.bytes_moved"),
		})

		// ③ Lock-step sealed RPC over untrusted memory.
		dh, err := attest.NewDHKey([]byte("micro-lockstep"))
		if err != nil {
			return err
		}
		files := map[string][]byte{
			"cuda.edl":  driver.CUDAEDL(),
			"app.cubin": gpu.BuildCubin("vec_add"),
		}
		manifest := enclave.NewManifest("gpu", "cuda.edl", "app.cubin", files, enclave.Resources{Memory: "16M"})
		res, err := pl.D.CreateEnclave(p, "lockstep", manifest, files, dh.Pub)
		if err != nil {
			return err
		}
		sec, err := dh.Shared(res.DHPub)
		if err != nil {
			return err
		}
		tx := attest.NewChannel(sec, "owner->enclave")
		rx := attest.NewChannel(sec, "enclave->owner")
		reply, err := pl.D.InvokeSealed(p, res.EID, mos.SealRequest(tx, driver.CallMemAlloc, driver.EncodeMemAlloc(uint64(payload))))
		if err != nil {
			return err
		}
		out, err := mos.OpenReply(rx, reply)
		if err != nil {
			return err
		}
		lptr, err := driver.DecodePtr(out)
		if err != nil {
			return err
		}
		pre = metrics.Default.Snapshot()
		start = p.Now()
		for i := 0; i < calls; i++ {
			reply, err := pl.D.InvokeSealed(p, res.EID, mos.SealRequest(tx, driver.CallHtoD, driver.EncodeHtoD(lptr, data)))
			if err != nil {
				return err
			}
			if _, err := mos.OpenReply(rx, reply); err != nil {
				return err
			}
		}
		total = sim.Duration(p.Now() - start)
		post = metrics.Default.Snapshot()
		rows = append(rows, SRPCMicroRow{
			Mechanism: "lock-step sealed", Calls: calls, Payload: payload,
			Total: total, PerCall: total / sim.Duration(calls),
			MECalls: post.CounterDelta(pre, "mos.mecalls.sealed"),
			Bytes:   post.CounterDelta(pre, "srpc.bytes_moved"), // zero: sealed RPC bypasses the ring
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderSRPCMicro formats the RPC microbenchmark.
func RenderSRPCMicro(rows []SRPCMicroRow) *Table {
	t := &Table{
		Title:   fmt.Sprintf("sRPC microbenchmark (%d calls, %dB payload)", rows[0].Calls, rows[0].Payload),
		Columns: []string{"mechanism", "total(ms)", "per-call(us)", "mECalls", "smem-bytes"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Mechanism, ms(r.Total), fmt.Sprintf("%.2f", float64(r.PerCall)/1e3),
			fmt.Sprintf("%d", r.MECalls), fmt.Sprintf("%d", r.Bytes),
		})
	}
	return t
}
