package experiments

import (
	"fmt"

	"cronus/internal/chaos"
	"cronus/internal/sim"
)

// ChaosRow is one soak campaign at one fault mix: how many faults fired,
// what the recovery machinery absorbed (replays, retries, timeouts), the
// worst per-tenant p95 the faults caused, and how many invariants broke
// (always zero on a healthy tree).
type ChaosRow struct {
	Mix        string
	Seeds      int
	Faults     int
	Fired      int
	Replays    uint64
	Retries    uint64
	Timeouts   uint64
	WorstP95   sim.Duration
	Violations int
}

// ChaosSweep soaks the serving plane under each fault kind in isolation and
// then under the full mix, seedsPerMix consecutive seeds each (default 5).
// Every campaign is deterministic, so the table reproduces byte-identically.
func ChaosSweep(seedsPerMix int) ([]ChaosRow, error) {
	if seedsPerMix <= 0 {
		seedsPerMix = 5
	}
	mixes := []struct {
		label  string
		kinds  []chaos.Kind
		faults int
	}{
		{"crash", []chaos.Kind{chaos.KindCrash}, 1},
		{"device-hang", []chaos.Kind{chaos.KindDeviceHang}, 2},
		{"ring-corrupt", []chaos.Kind{chaos.KindRingCorrupt}, 2},
		{"attest-fail", []chaos.Kind{chaos.KindAttestFail}, 1},
		{"persistent-hang", []chaos.Kind{chaos.KindPersistentHang}, 2},
		{"crash-loop", []chaos.Kind{chaos.KindCrashLoop}, 1},
		{"all", nil, 3},
	}
	var rows []ChaosRow
	for _, m := range mixes {
		cr, err := chaos.RunCampaign(100, seedsPerMix, chaos.Options{
			Kinds:  m.kinds,
			Faults: m.faults,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos sweep %s: %w", m.label, err)
		}
		row := ChaosRow{Mix: m.label, Seeds: len(cr.Runs), Violations: cr.Violations()}
		for _, rr := range cr.Runs {
			row.Faults += len(rr.Schedule.Faults)
			row.Fired += rr.FiredCount()
			for _, tr := range rr.Faulted.Tenants {
				row.Replays += tr.Replayed
				row.Retries += tr.Retried
				row.Timeouts += tr.Timeouts
				if d := sim.Duration(tr.P95NS); d > row.WorstP95 {
					row.WorstP95 = d
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderChaosSweep formats the chaos soak table.
func RenderChaosSweep(rows []ChaosRow) *Table {
	t := &Table{
		Title: "Chaos soak: fault kinds vs recovery machinery (invariants must hold at 0 violations)",
		Columns: []string{"fault mix", "seeds", "faults", "fired", "replays",
			"retries", "timeouts", "worst p95", "violations"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Mix,
			fmt.Sprintf("%d", r.Seeds),
			fmt.Sprintf("%d", r.Faults),
			fmt.Sprintf("%d", r.Fired),
			fmt.Sprintf("%d", r.Replays),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Timeouts),
			r.WorstP95.String(),
			fmt.Sprintf("%d", r.Violations),
		})
	}
	return t
}
