package experiments

import (
	"testing"
)

func TestAblationStreamingShowsTheWin(t *testing.T) {
	rows, err := AblationStreaming()
	if err != nil {
		t.Fatal(err)
	}
	stream, forced := rows[0].Total, rows[1].Total
	if forced <= stream {
		t.Fatalf("forced-sync (%v) not slower than streaming (%v)", forced, stream)
	}
	// gaussian issues ~190 launches; forcing each to wait must cost
	// measurably (the executor round trip per call).
	if float64(forced) < 1.005*float64(stream) {
		t.Errorf("forced-sync only %.4fx streaming — ablation shows nothing", float64(forced)/float64(stream))
	}
	_ = RenderAblationStreaming(rows)
}

func TestAblationRingSizeMonotone(t *testing.T) {
	rows, err := AblationRingSize()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// A tiny ring stalls on flow control; bigger rings cannot be slower.
	for i := 1; i < len(rows); i++ {
		if rows[i].Transfer > rows[i-1].Transfer {
			t.Errorf("ring %d pages slower than %d pages (%v > %v)",
				rows[i].RingPages, rows[i-1].RingPages, rows[i].Transfer, rows[i-1].Transfer)
		}
	}
	// And the smallest ring must pay something for the stalls.
	if rows[0].Transfer <= rows[len(rows)-1].Transfer {
		t.Error("ring size had no effect at all")
	}
	_ = RenderAblationRingSize(rows)
}

func TestAblationSwitchCostSensitivity(t *testing.T) {
	rows, err := AblationSwitchCost()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// HIX degrades with the switch cost; CRONUS barely moves.
	hixGrowth := float64(rows[len(rows)-1].HIX) / float64(rows[0].HIX)
	cronusGrowth := float64(rows[len(rows)-1].CRONUS) / float64(rows[0].CRONUS)
	if hixGrowth < 1.5 {
		t.Errorf("HIX grew only %.2fx across an 8x switch-cost sweep", hixGrowth)
	}
	if cronusGrowth > 1.1 {
		t.Errorf("CRONUS grew %.2fx — streamed calls should not pay switches", cronusGrowth)
	}
	_ = RenderAblationSwitchCost(rows)
}

func TestSharingPoliciesOrdering(t *testing.T) {
	rows, err := SharingPolicies(0)
	if err != nil {
		t.Fatal(err)
	}
	get := func(p string) int {
		for _, r := range rows {
			if r.Policy == p {
				return r.Steps
			}
		}
		t.Fatalf("missing policy %s", p)
		return 0
	}
	mps := get("mps-spatial")
	mig := get("mig-slices")
	temporal := get("temporal")
	reboot := get("hw-dedicated-reboot")
	// Spatial sharing beats temporal; any CRONUS policy crushes the
	// hardware approach's cold-reboot-per-switch temporal sharing.
	if mps <= temporal {
		t.Errorf("mps %d not above temporal %d", mps, temporal)
	}
	if mig <= temporal {
		t.Errorf("mig %d not above temporal %d", mig, temporal)
	}
	if reboot*5 > temporal {
		t.Errorf("cold-reboot sharing %d not dramatically below temporal %d", reboot, temporal)
	}
	_ = RenderSharingPolicies(rows)
}
