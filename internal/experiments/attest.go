package experiments

import (
	"fmt"

	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/tvm"
)

// AttestRow is one serving-plane run under one attestation mode: the gate
// off, the gate forced cold on every dispatch (ticket TTL below the
// inter-dispatch gap, so no session ever resumes), or the gate with live
// session tickets.
type AttestRow struct {
	Tenants int
	Mode    string // "off", "cold", "tickets"

	Cold    uint64 // dispatches that paid the quote verification
	Resumed uint64 // dispatches that resumed on a session ticket
	HitRate float64

	// MeanAdmitNS is the mean attestation delay charged per dispatch
	// (serve.attest.admission_ns); zero with the gate off. ColdMeanNS and
	// ResumeMeanNS split it by path: what a cold attestation actually cost
	// (the quote verification, amortized by the verify cache after the
	// first) versus what a ticket resume cost (one MAC, always).
	MeanAdmitNS  float64
	ColdMeanNS   float64
	ResumeMeanNS float64

	P50        sim.Duration
	P95        sim.Duration
	GoodputRPS float64
}

// AttestAmortization sweeps the tenant count with the attestation admission
// gate in three modes — off, every-dispatch-cold, and session-ticket
// resumption — at a fixed per-tenant load. Cold attestation pays the quote
// verification (Costs.VerifyFixed x 2, what Platform.RemoteAttest charges)
// on the dispatch path; a ticket resume pays one MAC (Costs.MACFixed),
// about 500x less, so the table shows the amortization directly: the
// tickets rows sit within a few percent of the gate-off baseline while the
// cold rows eat the verification latency in p50.
func AttestAmortization(tenantCounts []int) ([]AttestRow, error) {
	if len(tenantCounts) == 0 {
		tenantCounts = []int{2, 4, 8}
	}
	modes := []struct {
		name string
		set  func(*serve.Config)
	}{
		{"off", func(cfg *serve.Config) {}},
		{"cold", func(cfg *serve.Config) {
			cfg.AttestTickets = true
			// A ticket that expires before the tenant's next dispatch:
			// every admission goes through the cold quote verification.
			cfg.AttestTicketTTL = 1 * sim.Nanosecond
		}},
		{"tickets", func(cfg *serve.Config) {
			cfg.AttestTickets = true // default TTL: sessions resume
		}},
	}
	var rows []AttestRow
	for _, n := range tenantCounts {
		for _, m := range modes {
			cfg := serve.Config{
				Seed:          29,
				Window:        20 * sim.Millisecond,
				Policy:        serve.RoundRobin,
				MaxBatch:      4,
				BatchWindow:   40 * sim.Microsecond,
				GPUPartitions: 2,
			}
			for i := 0; i < n; i++ {
				cfg.Tenants = append(cfg.Tenants, serve.TenantSpec{
					Name:    fmt.Sprintf("tenant-%d", i),
					Arrival: serve.Poisson,
					Rate:    2000,
					Mix:     []serve.WorkClass{{Name: "resnet18", Graph: tvm.ResNet18()}},
				})
			}
			m.set(&cfg)
			res, err := serve.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("attest sweep tenants=%d mode=%s: %w", n, m.name, err)
			}
			row := AttestRow{Tenants: n, Mode: m.name}
			var p50s, p95s, goodput float64
			for _, tr := range res.Tenants {
				p50s += tr.P50NS
				p95s += tr.P95NS
				goodput += tr.GoodputRPS
			}
			row.P50 = sim.Duration(p50s / float64(n))
			row.P95 = sim.Duration(p95s / float64(n))
			row.GoodputRPS = goodput
			c := res.Metrics.Counters
			row.Cold = c["serve.attest.cold"]
			row.Resumed = c["serve.attest.resumed"]
			if total := row.Cold + row.Resumed; total > 0 {
				row.HitRate = float64(row.Resumed) / float64(total)
				h := res.Metrics.Histograms["serve.attest.admission_ns"]
				row.MeanAdmitNS = float64(h.Sum) / float64(total)
			}
			if row.Cold > 0 {
				h := res.Metrics.Histograms["serve.attest.cold_ns"]
				row.ColdMeanNS = float64(h.Sum) / float64(row.Cold)
			}
			if row.Resumed > 0 {
				h := res.Metrics.Histograms["serve.attest.resume_ns"]
				row.ResumeMeanNS = float64(h.Sum) / float64(row.Resumed)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderAttestAmortization formats the attestation amortization sweep.
func RenderAttestAmortization(rows []AttestRow) *Table {
	t := &Table{
		Title:   "Attestation at scale: admission cost, gate off vs cold vs session tickets",
		Columns: []string{"tenants", "mode", "cold", "resumed", "hit%", "cold-mean", "resume-mean", "mean-admit", "p50", "p95", "goodput/s"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Tenants),
			r.Mode,
			fmt.Sprintf("%d", r.Cold),
			fmt.Sprintf("%d", r.Resumed),
			fmt.Sprintf("%.1f%%", r.HitRate*100),
			sim.Duration(r.ColdMeanNS).String(),
			sim.Duration(r.ResumeMeanNS).String(),
			sim.Duration(r.MeanAdmitNS).String(),
			r.P50.String(),
			r.P95.String(),
			fmt.Sprintf("%.0f", r.GoodputRPS),
		})
	}
	return t
}
