package experiments

import (
	"fmt"

	"cronus/internal/core"
	"cronus/internal/dnn"
	"cronus/internal/sim"
)

// SharingPolicyRow is one accelerator-sharing policy under a fixed
// two-tenant LeNet training load.
type SharingPolicyRow struct {
	Policy string
	Steps  int // aggregate steps completed in the window
}

// SharingPolicies compares the accelerator-sharing mechanisms the paper's
// Table I distinguishes, under two concurrent training tenants:
//
//   - "mps-spatial": CRONUS with MPS-style concurrent kernels (R2)
//   - "mig-slices": CRONUS with MIG-style static SM slices (§V-B's
//     alternative once hardware supports it)
//   - "temporal": CRONUS with whole-device exclusive kernels
//   - "hw-dedicated-reboot": the hardware-based approach's temporal sharing,
//     which must cold-reboot the accelerator on every tenant switch
//     (Table I remark ¹) — modelled by charging the device-clear time per
//     switch on top of exclusive execution.
func SharingPolicies(window sim.Duration) ([]SharingPolicyRow, error) {
	if window <= 0 {
		window = 12 * sim.Millisecond
	}
	const tenants = 2
	run := func(policy string) (int, error) {
		total := 0
		err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
			dnn.RegisterKernels(pl.GPUs[0].Dev.SMs())
			switch policy {
			case "mps-spatial":
				pl.GPUs[0].Dev.SetMPS(true)
			case "mig-slices":
				pl.GPUs[0].Dev.SetMPS(true)
				pl.GPUs[0].Dev.ConfigureMIG(tenants)
			default:
				pl.GPUs[0].Dev.SetMPS(false)
			}
			k := pl.K
			wg := sim.NewWaitGroup(k)
			counts := make([]int, tenants)
			for i := 0; i < tenants; i++ {
				i := i
				wg.Add(1)
				k.Spawn(fmt.Sprintf("tenant-%d", i), func(tp *sim.Proc) {
					defer wg.Done()
					s, err := pl.NewSession(tp, fmt.Sprintf("tenant-%d", i))
					if err != nil {
						return
					}
					conn, err := s.OpenCUDA(tp, core.CUDAOptions{Cubin: dnn.Cubin(), RingPages: 65})
					if err != nil {
						return
					}
					defer conn.Close(tp)
					tr, err := dnn.NewTrainer(tp, conn, dnn.LeNet2(), 8)
					if err != nil {
						return
					}
					deadline := tp.Now() + sim.Time(window)
					for tp.Now() < deadline {
						if _, err := tr.Step(tp); err != nil {
							return
						}
						if policy == "hw-dedicated-reboot" {
							// Bus-level access control cannot see
							// accelerator internals: handing the
							// device to the other tenant requires a
							// cold reboot to clear state.
							tp.Sleep(pl.Costs.DeviceClear)
						}
						counts[i]++
					}
				})
			}
			wg.Wait(p)
			for _, c := range counts {
				total += c
			}
			return nil
		})
		return total, err
	}
	var rows []SharingPolicyRow
	for _, policy := range []string{"mps-spatial", "mig-slices", "temporal", "hw-dedicated-reboot"} {
		steps, err := run(policy)
		if err != nil {
			return nil, fmt.Errorf("sharing policy %s: %w", policy, err)
		}
		rows = append(rows, SharingPolicyRow{Policy: policy, Steps: steps})
	}
	return rows, nil
}

// RenderSharingPolicies formats the policy comparison.
func RenderSharingPolicies(rows []SharingPolicyRow) *Table {
	t := &Table{
		Title:   "Sharing policies: 2 training tenants on one GPU (aggregate steps per window)",
		Columns: []string{"policy", "steps"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Policy, fmt.Sprintf("%d", r.Steps)})
	}
	return t
}
