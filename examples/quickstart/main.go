// Quickstart: boot a CRONUS platform, attest it, create a protected session
// whose CPU mEnclave drives a CUDA mEnclave over streaming RPC, and run a
// vector addition on the (simulated) GPU — the paper's Figure 2/4 workflow
// end to end.
package main

import (
	"fmt"
	"log"

	"cronus/internal/core"
	"cronus/internal/gpu"
	"cronus/internal/metrics"
	"cronus/internal/sim"
)

func main() {
	metrics.Default.Enable()
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		fmt.Println("== CRONUS quickstart ==")
		fmt.Printf("platform: %d partition(s), GPU %s (%.0f SMs), NPU %s\n",
			len(pl.SPM.Partitions()), pl.GPUs[0].Dev.Name(), pl.GPUs[0].Dev.SMs(), pl.NPUs[0].Dev.Name())

		// ① The application creates its protected session (a CPU
		// mEnclave) and checks the sealed channel.
		s, err := pl.NewSession(p, "quickstart")
		if err != nil {
			return err
		}
		echo, err := s.Ping(p, []byte("hello secure world"))
		if err != nil {
			return err
		}
		fmt.Printf("sealed mECall round trip: %q\n", echo)

		// ② The session creates a CUDA mEnclave; CRONUS performs local
		// attestation, maps trusted shared memory, runs dCheck, and
		// starts the executor thread.
		g, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add")})
		if err != nil {
			return err
		}
		defer g.Close(p)
		fmt.Printf("CUDA mEnclave %#x connected over sRPC\n", g.EID)

		// ③ The user remote-attests the whole closure: both enclaves,
		// every mOS, and the frozen device tree.
		if err := s.Attest(p, 42); err != nil {
			return fmt.Errorf("remote attestation failed: %w", err)
		}
		fmt.Println("remote attestation: platform report verified (RoT → AtK → report; vendor-endorsed GPU key)")

		// ④ Stream work to the GPU: two async uploads, an async launch,
		// and one synchronous download (the only blocking call).
		const n = 1024
		a, _ := g.MemAlloc(p, n*4)
		b, _ := g.MemAlloc(p, n*4)
		c, _ := g.MemAlloc(p, n*4)
		av := make([]float32, n)
		bv := make([]float32, n)
		for i := range av {
			av[i] = float32(i)
			bv[i] = float32(i * i)
		}
		start := p.Now()
		if err := g.HtoD(p, a, gpu.PackF32(av)); err != nil {
			return err
		}
		if err := g.HtoD(p, b, gpu.PackF32(bv)); err != nil {
			return err
		}
		if err := g.Launch(p, "vec_add", gpu.Dim{n, 1, 1}, a, b, c); err != nil {
			return err
		}
		out, err := g.DtoH(p, c, n*4)
		if err != nil {
			return err
		}
		res := gpu.UnpackF32(out)
		fmt.Printf("vec_add(1024) on the GPU mEnclave: c[7]=%v c[1023]=%v (virtual time %v)\n",
			res[7], res[1023], sim.Duration(p.Now()-start))
		snap := metrics.Default.Snapshot()
		fmt.Printf("stream stats: %d mECalls, %d synchronous waits\n",
			snap.Counters["srpc.calls"], snap.Counters["srpc.sync_waits"])
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
