// Spatial-sharing example (the paper's §VI-C / Figure 11a): several tenant
// mEnclaves train LeNet concurrently on ONE GPU. With MPS-style spatial
// sharing their kernels co-run on the SM pool; with temporal (dedicated)
// sharing each kernel owns the whole device. Aggregate throughput shows why
// R2 matters for PaaS economics.
package main

import (
	"fmt"
	"log"

	"cronus/internal/core"
	"cronus/internal/dnn"
	"cronus/internal/sim"
)

const window = 15 * sim.Millisecond

func run(tenants int, spatial bool) (int, error) {
	total := 0
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		dnn.RegisterKernels(pl.GPUs[0].Dev.SMs())
		pl.GPUs[0].Dev.SetMPS(spatial)
		wg := sim.NewWaitGroup(pl.K)
		counts := make([]int, tenants)
		for i := 0; i < tenants; i++ {
			i := i
			wg.Add(1)
			pl.K.Spawn(fmt.Sprintf("tenant-%d", i), func(tp *sim.Proc) {
				defer wg.Done()
				s, err := pl.NewSession(tp, fmt.Sprintf("tenant-%d", i))
				if err != nil {
					return
				}
				conn, err := s.OpenCUDA(tp, core.CUDAOptions{Cubin: dnn.Cubin(), RingPages: 65})
				if err != nil {
					return
				}
				defer conn.Close(tp)
				tr, err := dnn.NewTrainer(tp, conn, dnn.LeNet2(), 8)
				if err != nil {
					return
				}
				deadline := tp.Now() + sim.Time(window)
				for tp.Now() < deadline {
					if _, err := tr.Step(tp); err != nil {
						return
					}
					counts[i]++
				}
			})
		}
		wg.Wait(p)
		for _, c := range counts {
			total += c
		}
		return nil
	})
	return total, err
}

func main() {
	fmt.Printf("LeNet training tenants sharing one GPU (window %v)\n\n", window)
	fmt.Printf("%-9s  %-16s  %-20s  %s\n", "tenants", "spatial (steps)", "temporal (steps)", "spatial gain")
	for _, tenants := range []int{1, 2, 4} {
		spatial, err := run(tenants, true)
		if err != nil {
			log.Fatal(err)
		}
		temporal, err := run(tenants, false)
		if err != nil {
			log.Fatal(err)
		}
		gain := 100 * (float64(spatial)/float64(temporal) - 1)
		fmt.Printf("%-9d  %-16d  %-20d  %+.1f%%\n", tenants, spatial, temporal, gain)
	}
	fmt.Println("\n(the paper reports up to 63.4% higher throughput with spatial sharing, R2)")
}
