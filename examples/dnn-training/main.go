// DNN training example (the paper's §VI-C workload): train LeNet-2 on the
// MNIST stand-in inside a CRONUS CUDA mEnclave and compare the per-iteration
// time against an unprotected native run — the headline "<7.1% extra
// computation time" claim, live.
package main

import (
	"fmt"
	"log"

	"cronus/internal/baseline"
	"cronus/internal/core"
	"cronus/internal/dnn"
	"cronus/internal/gpu"
	"cronus/internal/sim"
)

const (
	batch = 16
	iters = 5
)

func nativeRun() (sim.Duration, error) {
	k := sim.NewKernel()
	var elapsed sim.Duration
	var fail error
	k.Spawn("main", func(p *sim.Proc) {
		defer k.Stop()
		costs := sim.DefaultCosts()
		dev := gpu.New(k, costs, gpu.Config{Name: "gpu0", MemBytes: 1 << 30, SMs: 46, CopyEngs: 2, MPS: true, KeySeed: "ex"})
		gpu.RegisterStdKernels(dev.SMs())
		dnn.RegisterKernels(dev.SMs())
		ops, err := baseline.NewNativeCUDA(dev, costs, dnn.Cubin())
		if err != nil {
			fail = err
			return
		}
		tr, err := dnn.NewTrainer(p, ops, dnn.LeNet2(), batch)
		if err != nil {
			fail = err
			return
		}
		start := p.Now()
		for i := 0; i < iters; i++ {
			if _, err := tr.Step(p); err != nil {
				fail = err
				return
			}
		}
		elapsed = sim.Duration(p.Now() - start)
	})
	if err := k.Run(); err != nil {
		return 0, err
	}
	return elapsed, fail
}

func main() {
	native, err := nativeRun()
	if err != nil {
		log.Fatal(err)
	}

	var protected sim.Duration
	err = core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		dnn.RegisterKernels(pl.GPUs[0].Dev.SMs())
		s, err := pl.NewSession(p, "training")
		if err != nil {
			return err
		}
		conn, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: dnn.Cubin(), RingPages: 65, Memory: "256M"})
		if err != nil {
			return err
		}
		defer conn.Close(p)
		if err := s.Attest(p, 7); err != nil {
			return err
		}
		fmt.Println("attestation verified; training inside the CUDA mEnclave")
		tr, err := dnn.NewTrainer(p, conn, dnn.LeNet2(), batch)
		if err != nil {
			return err
		}
		start := p.Now()
		for i := 0; i < iters; i++ {
			loss, err := tr.Step(p)
			if err != nil {
				return err
			}
			fmt.Printf("  iter %d: loss=%.4f\n", i+1, loss)
		}
		protected = sim.Duration(p.Now() - start)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	overhead := 100 * (float64(protected)/float64(native) - 1)
	fmt.Printf("\nLeNet-2/MNIST, batch %d, %d iterations:\n", batch, iters)
	fmt.Printf("  native (unprotected): %v\n", native)
	fmt.Printf("  CRONUS (protected):   %v\n", protected)
	fmt.Printf("  overhead:             %+.2f%%  (paper's band: < 7.1%%)\n", overhead)
}
