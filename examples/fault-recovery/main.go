// Fault-recovery example (the paper's §VI-D failover): two GPU tasks run in
// separate S-EL2 partitions; one partition is crashed mid-run. CRONUS's
// proceed-trap procedure tears down the victim's stream safely (no TOCTOU,
// no deadlock, no data leak), restarts only that mOS in hundreds of
// milliseconds, and the task resubmits — while the other partition's task
// never misses a beat.
package main

import (
	"errors"
	"fmt"
	"log"

	"cronus/internal/core"
	"cronus/internal/gpu"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/srpc"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.GPUs = 2
	err := core.Run(cfg, func(pl *core.Platform, p *sim.Proc) error {
		gpu.Register(&gpu.Kernel{
			Name: "matrix_task",
			Cost: func(gpu.Dim, []uint64) gpu.LaunchCost {
				return gpu.LaunchCost{Work: 5 * sim.Millisecond, SMDemand: 30}
			},
			Func: func(e *gpu.Exec) error { return nil },
		})

		s, err := pl.NewSession(p, "fault-demo")
		if err != nil {
			return err
		}
		open := func(partition, name string) (*core.CUDAConn, error) {
			return s.OpenCUDA(p, core.CUDAOptions{
				Cubin: gpu.BuildCubin("matrix_task"), Partition: partition, Name: name,
			})
		}
		healthy, err := open("gpu-part0", "task-A")
		if err != nil {
			return err
		}
		victim, err := open("gpu-part1", "task-B")
		if err != nil {
			return err
		}
		step := func(c *core.CUDAConn) error {
			if err := c.Launch(p, "matrix_task", gpu.Dim{1, 1, 1}); err != nil {
				return err
			}
			return c.Sync(p)
		}
		for i := 0; i < 3; i++ {
			if err := step(healthy); err != nil {
				return err
			}
			if err := step(victim); err != nil {
				return err
			}
		}
		fmt.Printf("t=%v  both tasks computing in separate partitions\n", p.Now())

		// The GPU-1 partition crashes (buggy driver / malicious code).
		crashAt := p.Now()
		rec := pl.SPM.Fail(pl.GPUs[1].Part, spm.FailPanic)
		fmt.Printf("t=%v  partition gpu-part1 CRASHED (injected panic)\n", p.Now())

		// The victim's next stream access traps and reports the failure.
		err = step(victim)
		if !errors.Is(err, srpc.ErrPeerFailed) {
			return fmt.Errorf("expected peer-failure signal, got %v", err)
		}
		fmt.Printf("t=%v  task-B's stream trapped and tore down cleanly: %v\n", p.Now(), err)

		// The healthy partition is completely unaffected (R3.1).
		if err := step(healthy); err != nil {
			return fmt.Errorf("healthy task disturbed: %w", err)
		}
		fmt.Printf("t=%v  task-A (gpu-part0) kept computing through the crash\n", p.Now())

		// Wait for the SPM's recovery: device scrubbed, mOS reloaded.
		pl.SPM.AwaitReady(p, pl.GPUs[1].Part)
		p.Sleep(sim.Millisecond)
		fmt.Printf("t=%v  gpu-part1 recovered (downtime %v, epoch %d) — a machine reboot would cost %v\n",
			p.Now(), rec.Downtime(), pl.GPUs[1].Part.Epoch(), pl.Costs.MachineReboot)

		// Resubmit task B against the fresh incarnation.
		victim2, err := open("gpu-part1", "task-B-resubmitted")
		if err != nil {
			return err
		}
		if err := step(victim2); err != nil {
			return err
		}
		fmt.Printf("t=%v  task-B resubmitted and computing again (%.0f ms after the crash)\n",
			p.Now(), float64(p.Now()-crashAt)/1e6)
		victim2.Close(p)
		healthy.Close(p)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
