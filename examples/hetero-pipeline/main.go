// Heterogeneous pipeline example — the paper's core scenario (Figure 2):
// one protected application spans THREE mutually isolated partitions. The
// CPU mEnclave preprocesses, a CUDA mEnclave runs the float feature
// extraction, and an NPU mEnclave runs the quantized int8 classifier — all
// stitched together with streaming RPC, each partition trusting only
// itself, and the app needing to trust only the partitions it uses (R3.2).
package main

import (
	"fmt"
	"log"

	"cronus/internal/core"
	"cronus/internal/gpu"
	"cronus/internal/metrics"
	"cronus/internal/sim"
	"cronus/internal/workload/vtabench"
)

func main() {
	metrics.Default.Enable()
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "pipeline")
		if err != nil {
			return err
		}
		g, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("matmul", "relu")})
		if err != nil {
			return err
		}
		defer g.Close(p)
		n, err := s.OpenNPU(p, core.NPUOptions{RingPages: 65})
		if err != nil {
			return err
		}
		defer n.Close(p)
		if err := s.Attest(p, 123); err != nil {
			return err
		}
		fmt.Println("attested: CPU session + CUDA mEnclave + NPU mEnclave (3 isolated partitions)")

		// ① CPU stage: "decode" the input inside the session enclave.
		const batch, feat = 4, 32
		input := make([]float32, batch*feat)
		for i := range input {
			input[i] = float32((i*7)%13) / 13
		}

		// ② GPU stage: feature extraction (matmul + ReLU), streamed.
		w := make([]float32, feat*feat)
		for i := range w {
			w[i] = float32((i*31)%17-8) / 64
		}
		gw, _ := g.MemAlloc(p, feat*feat*4)
		gx, _ := g.MemAlloc(p, batch*feat*4)
		gy, _ := g.MemAlloc(p, batch*feat*4)
		start := p.Now()
		g.HtoD(p, gw, gpu.PackF32(w))
		g.HtoD(p, gx, gpu.PackF32(input))
		g.Launch(p, "matmul", gpu.Dim{1, 1, 1}, gx, gw, gy, batch, feat, feat)
		g.Launch(p, "relu", gpu.Dim{batch * feat, 1, 1}, gy, gy)
		features, err := g.DtoH(p, gy, batch*feat*4)
		if err != nil {
			return err
		}
		gpuDone := p.Now()

		// ③ Quantize in the CPU enclave (float32 → int8) and hand the
		// tensor to the NPU mEnclave over its own trusted stream.
		f := gpu.UnpackF32(features)
		q := make([]byte, len(f))
		for i, v := range f {
			x := int32(v * 32)
			if x > 127 {
				x = 127
			}
			if x < -128 {
				x = -128
			}
			q[i] = byte(int8(x))
		}

		// ④ NPU stage: int8 GEMM classifier.
		const classes = 16
		wq := make([]byte, feat*classes)
		for i := range wq {
			wq[i] = byte(int8((i*5)%7 - 3))
		}
		packed := vtabench.PackWeights(wq, feat, classes)
		na, _ := n.MemAlloc(p, uint64(len(q)))
		nw, _ := n.MemAlloc(p, uint64(len(packed)))
		nc, _ := n.MemAlloc(p, batch*classes)
		n.HtoD(p, na, q)
		n.HtoD(p, nw, packed)
		if err := n.Run(p, vtabench.MatmulProgram(na, nw, nc, batch, classes, feat)); err != nil {
			return err
		}
		logits, err := n.DtoH(p, nc, batch*classes)
		if err != nil {
			return err
		}
		npuDone := p.Now()

		for b := 0; b < batch; b++ {
			best, bestV := 0, int8(-128)
			for c := 0; c < classes; c++ {
				if v := int8(logits[b*classes+c]); v > bestV {
					bestV, best = v, c
				}
			}
			fmt.Printf("sample %d → class %d (logit %d)\n", b, best, bestV)
		}
		fmt.Printf("\nGPU stage %v, NPU stage %v — three partitions, zero mutual trust\n",
			sim.Duration(gpuDone-start), sim.Duration(npuDone-gpuDone))
		snap := metrics.Default.Snapshot()
		fmt.Printf("stream stats: %d mECalls over %d streams, %d GPU launches / %d NPU programs\n",
			snap.Counters["srpc.calls"], snap.Counters["srpc.streams.opened"],
			snap.Counters["driver.gpu.kernel_launches"], snap.Counters["driver.npu.runs"])

		// R3.2 in action: this app never created an enclave in, nor
		// shares memory with, any partition beyond the three it attested.
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
