// NPU inference example (the paper's §VI-C TVM workload): compile ResNet18
// with the TVM-style lowering, run quantized int8 inference inside an NPU
// mEnclave on the VTA-compatible simulator, and report the latency next to
// a CPU-enclave fallback — the Figure 10b comparison, live.
package main

import (
	"fmt"
	"log"

	"cronus/internal/core"
	"cronus/internal/sim"
	"cronus/internal/tvm"
)

func main() {
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "inference")
		if err != nil {
			return err
		}
		conn, err := s.OpenNPU(p, core.NPUOptions{RingPages: 257, Memory: "128M"})
		if err != nil {
			return err
		}
		defer conn.Close(p)
		fmt.Printf("NPU mEnclave %#x connected (device %s)\n", conn.EID, pl.NPUs[0].Dev.Name())

		for _, g := range tvm.InferenceGraphs() {
			engine, err := tvm.Compile(p, conn, g)
			if err != nil {
				return fmt.Errorf("%s: %w", g.Name, err)
			}
			input := make([]byte, engine.InLen)
			for i := range input {
				input[i] = byte(int8(i%7 - 3))
			}
			start := p.Now()
			logits, err := engine.Infer(p, input)
			if err != nil {
				return fmt.Errorf("%s: %w", g.Name, err)
			}
			npuLat := sim.Duration(p.Now() - start)
			cpuLat := tvm.CPUInfer(p, g)
			fmt.Printf("%-9s %3d layers  NPU-mEnclave %10v   CPU-enclave %10v   logits[0..3]=%v\n",
				g.Name, len(g.Layers), npuLat, cpuLat, logits[:4])
		}
		fmt.Println("\n(the NPU is the fsim-style functional simulator, as in the paper —")
		fmt.Println(" real silicon would be orders of magnitude faster)")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
