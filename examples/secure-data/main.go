// Secure-data example (the paper's §III-D workflow end to end): the user
// attests the platform, derives a session key bound to the attested
// enclave, and only then ships encrypted training data through the
// untrusted world; the CPU mEnclave decrypts it and streams the plaintext
// to the GPU mEnclave over trusted shared memory — the data is never
// visible to the normal world.
package main

import (
	"fmt"
	"log"

	"cronus/internal/attest"
	"cronus/internal/core"
	"cronus/internal/gpu"
	"cronus/internal/provision"
	"cronus/internal/sim"
)

func main() {
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		// ① The application's protected session and GPU worker.
		s, err := pl.NewSession(p, "secure-data")
		if err != nil {
			return err
		}
		g, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("reduce_sum")})
		if err != nil {
			return err
		}
		defer g.Close(p)

		// ② The user (client) verifies the platform before releasing
		// anything: full chain — service-endorsed AtK, pinned enclave
		// and mOS hashes, frozen device tree, vendor-endorsed GPU key.
		client, err := provision.NewClient([]byte("data-owner"), pl.Verifier)
		if err != nil {
			return err
		}
		enclaveSeed := []byte("session-provisioning-key") // enclave-private
		enclavePub, err := provision.EnclavePub(enclaveSeed)
		if err != nil {
			return err
		}
		dt := pl.SPM.DTHash()
		report := pl.D.BuildReport(p, 99)
		want := attest.Expected{EnclaveHashes: s.EnclaveMeasurements(), DTHash: &dt, Nonce: 99}
		if err := client.VerifyAndBind(report, want, enclavePub); err != nil {
			return err
		}
		fmt.Println("① attestation verified — client releases its data key")

		// ③ The user encrypts the dataset; the ciphertext crosses the
		// untrusted world.
		samples := make([]float32, 1024)
		for i := range samples {
			samples[i] = float32(i%10) / 10
		}
		blob, err := client.Seal(p, gpu.PackF32(samples))
		if err != nil {
			return err
		}
		fmt.Printf("② dataset sealed: %d ciphertext bytes through the untrusted OS\n", len(blob.Ciphertext))

		// ④ Inside the attested CPU mEnclave: decrypt and stream to the
		// GPU mEnclave over trusted shared memory.
		recv, err := provision.NewReceiver(enclaveSeed, client.Pub())
		if err != nil {
			return err
		}
		plaintext, err := recv.Open(p, blob)
		if err != nil {
			return err
		}
		ptr, err := g.MemAlloc(p, uint64(len(plaintext)))
		if err != nil {
			return err
		}
		out, err := g.MemAlloc(p, 4)
		if err != nil {
			return err
		}
		if err := g.HtoD(p, ptr, plaintext); err != nil {
			return err
		}
		if err := g.Launch(p, "reduce_sum", gpu.Dim{len(samples), 1, 1}, ptr, out); err != nil {
			return err
		}
		res, err := g.DtoH(p, out, 4)
		if err != nil {
			return err
		}
		fmt.Printf("③ GPU mEnclave computed over the decrypted data: sum = %.1f\n", gpu.UnpackF32(res)[0])

		// ⑤ A replayed blob is rejected — the normal OS cannot feed the
		// enclave stale data.
		if _, err := recv.Open(p, blob); err != nil {
			fmt.Printf("④ replayed dataset blob rejected: %v\n", err)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
